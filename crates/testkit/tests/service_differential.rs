//! Acceptance tests for the synthesis daemon: the in-process client/server
//! differential over seeded multi-tenant traces.
//!
//! Every daemon response must be byte-identical to the corresponding direct
//! library call, every served schedule passes the three-way oracle, and the
//! daemon drains and exits cleanly at the end of every run. The flagship
//! 4-tenant mixed-load run lives here; `fig_service` in `tsn_bench` is the
//! throughput-measuring sibling of the same harness.

use std::net::TcpListener;

use testkit::{service_differential, Client};
use tsn_net::json::Json;
use tsn_service::protocol::{Backend, Request, RequestBody, Response};
use tsn_service::{serve, Service, ServiceConfig};
use tsn_workload::{pool_problem, service_trace, ServiceScenario, TenantTrace};

#[test]
fn four_tenant_mixed_trace_is_byte_identical_and_oracle_clean() {
    let scenario = ServiceScenario {
        tenants: 4,
        events_per_tenant: 8,
        synthesize_every: 3,
        problem_pool: 2,
        burst: 1,
        seed: 42,
    };
    let traces = service_trace(&scenario);
    assert_eq!(traces.len(), 4);
    let check = service_differential(&traces, ServiceConfig::default())
        .expect("every daemon response must match the direct library call");
    let total: usize = traces.iter().map(TenantTrace::len).sum();
    assert_eq!(
        check.responses, total,
        "every request got a checked response"
    );
    assert!(
        check.cache_hits >= 1,
        "the shared problem pool must produce cache hits: {check:?}"
    );
    assert!(
        check.oracle_checked >= 12,
        "served schedules must be oracle-checked: {check:?}"
    );
}

#[test]
fn single_worker_daemon_behaves_identically() {
    // One pool worker: everything serializes, the protocol must not care.
    let scenario = ServiceScenario {
        tenants: 2,
        events_per_tenant: 5,
        synthesize_every: 2,
        problem_pool: 1,
        burst: 1,
        seed: 3,
    };
    let traces = service_trace(&scenario);
    let check = service_differential(
        &traces,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("single-worker run must stay byte-identical");
    assert!(check.cache_hits >= 1, "{check:?}");
}

#[test]
fn cache_disabled_still_byte_identical() {
    // With the cache off every synthesize solves cold; payloads must not
    // change (determinism is a property of the solver, not the cache).
    let scenario = ServiceScenario {
        tenants: 2,
        events_per_tenant: 4,
        synthesize_every: 2,
        problem_pool: 1,
        burst: 1,
        seed: 9,
    };
    let traces = service_trace(&scenario);
    let check = service_differential(
        &traces,
        ServiceConfig {
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    )
    .expect("uncached run must stay byte-identical");
    assert_eq!(check.cache_hits, 0, "cache disabled means no hits");
}

#[test]
fn forced_backend_requests_are_differential_too() {
    // Hand-built trace: the same pool problem through both backends plus a
    // doomed tenant request; all byte-checked.
    let problem = pool_problem(0);
    let traces = vec![TenantTrace {
        tenant: "manual".into(),
        requests: vec![
            Request {
                id: 1,
                trace: None,
                body: RequestBody::Ping,
            },
            Request {
                id: 2,
                trace: None,
                body: RequestBody::Synthesize {
                    problem: problem.clone(),
                    config: None,
                    backend: Backend::Monolithic,
                },
            },
            Request {
                id: 3,
                trace: None,
                body: RequestBody::Synthesize {
                    problem: problem.clone(),
                    config: None,
                    backend: Backend::Partitioned,
                },
            },
            // Unknown tenant: the error string itself is byte-checked.
            Request {
                id: 4,
                trace: None,
                body: RequestBody::Event {
                    tenant: "manual".into(),
                    event: tsn_online::NetworkEvent::RemoveApp {
                        app: tsn_online::AppId(0),
                    },
                },
            },
        ],
    }];
    let check = service_differential(&traces, ServiceConfig::default())
        .expect("forced-backend trace must match the library");
    assert_eq!(check.responses, 4);
    assert_eq!(check.errors, 1, "the unknown-tenant error was compared too");
    assert_eq!(
        check.oracle_checked, 2,
        "both backend reports oracle-checked"
    );
}

#[test]
fn bursty_trace_batches_are_byte_identical_and_oracle_clean() {
    // Bursty arrivals: whole event windows travel as one `event_batch`
    // request, the daemon commits each with one joint batched solve, and
    // every batch response must be byte-identical to a shadow engine fed
    // the same batch (`process_batch` in-process, no daemon around it).
    let scenario = ServiceScenario {
        tenants: 2,
        events_per_tenant: 10,
        synthesize_every: 4,
        problem_pool: 2,
        burst: 4,
        seed: 21,
    };
    let traces = service_trace(&scenario);
    let batches: usize = traces
        .iter()
        .flat_map(|t| &t.requests)
        .filter(|r| matches!(r.body, RequestBody::EventBatch { .. }))
        .count();
    assert!(batches >= 2, "the bursty trace must carry real batches");
    let check = service_differential(&traces, ServiceConfig::default())
        .expect("batch-served responses must match the shadow engine fed the same batch");
    let total: usize = traces.iter().map(TenantTrace::len).sum();
    assert_eq!(check.responses, total);
    assert!(
        check.oracle_checked >= batches,
        "post-batch tenant states must be oracle-checked: {check:?}"
    );
}

#[test]
fn concurrent_identical_cold_synthesize_requests_solve_once_daemon_side() {
    // N parallel connections fire the same cold `synthesize` at the same
    // time: the daemon must run exactly one solve — every other request is
    // served by the result cache or coalesced onto the in-flight solve
    // (which of the two each request hits depends on timing; the sum does
    // not). The solve counter in the stats response is the witness.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let service = Service::new(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let n: usize = 4;
    let round_trip = |request: &Request| -> Response {
        Client::connect(addr)
            .expect("connect")
            .round_trip(request)
            .expect("round trip")
    };
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| serve(&service, listener));
        let clients: Vec<_> = (0..n)
            .map(|i| {
                let round_trip = &round_trip;
                scope.spawn(move || {
                    round_trip(&Request {
                        id: i as i64,
                        trace: None,
                        body: RequestBody::Synthesize {
                            problem: pool_problem(0),
                            config: None,
                            backend: Backend::Auto,
                        },
                    })
                })
            })
            .collect();
        let payloads: Vec<String> = clients
            .into_iter()
            .map(|c| c.join().expect("client").outcome.expect("ok").to_string())
            .collect();
        assert!(
            payloads.windows(2).all(|w| w[0] == w[1]),
            "all concurrent identical requests share one deterministic payload"
        );
        let stats = round_trip(&Request {
            id: 100,
            trace: None,
            body: RequestBody::Stats,
        })
        .outcome
        .expect("stats");
        let count = |key: &str| stats.get(key).and_then(Json::as_i64).unwrap_or(-1);
        assert_eq!(count("solves"), 1, "exactly one daemon-side solve: {stats}");
        assert_eq!(
            count("coalesced_misses") + count("cache_hits"),
            (n - 1) as i64,
            "stats: {stats}"
        );
        let shutdown = round_trip(&Request {
            id: 101,
            trace: None,
            body: RequestBody::Shutdown,
        });
        assert!(shutdown.outcome.is_ok());
        daemon.join().expect("daemon").expect("clean exit");
    });
}

#[test]
fn telemetry_on_and_off_serve_byte_identical_payloads() {
    // The differential already proves every daemon payload is byte-identical
    // to the deterministic direct library call. Running it once with every
    // telemetry channel quiet (flight recorder off, structured log at
    // `error` so nothing below that level is even built) and once with
    // everything loud (recorder on, log at `debug`, labeled per-tenant
    // metrics accumulating) therefore proves — by transitivity through the
    // library payloads — that observability changes no response byte: trace
    // ids, timings, log events and labeled series live only in the envelope
    // and the metrics/log channels.
    use tsn_telemetry::log::{self, Level};
    let scenario = ServiceScenario {
        tenants: 2,
        events_per_tenant: 6,
        synthesize_every: 3,
        problem_pool: 2,
        burst: 2,
        seed: 77,
    };
    let traces = service_trace(&scenario);
    log::logger().set_level(Level::Error);
    let off = service_differential(&traces, ServiceConfig::default());
    tsn_telemetry::set_enabled(true);
    log::logger().set_level(Level::Debug);
    let on = service_differential(&traces, ServiceConfig::default());
    tsn_telemetry::set_enabled(false);
    log::logger().set_level(Level::Info);
    let off = off.expect("telemetry-off run must stay byte-identical");
    let on = on.expect("telemetry-on run must stay byte-identical");
    assert_eq!(off.responses, on.responses);
    assert_eq!(off.errors, on.errors);
    // Non-vacuity: the loud run actually recorded on every channel, so the
    // equalities above compared a quiet run against a genuinely noisy one.
    assert!(
        tsn_telemetry::snapshot()
            .iter()
            .any(|s| s.name == "service.request"),
        "enabled run must have recorded service.request spans"
    );
    let exposition = tsn_telemetry::registry().render();
    assert!(
        tsn_telemetry::samples(&exposition, "service_tenant_requests_total")
            .iter()
            .any(|s| s.label("tenant").is_some()),
        "enabled run must have accumulated labeled per-tenant series"
    );
    assert!(
        log::logger()
            .recent(usize::MAX)
            .iter()
            .any(|e| e.target.starts_with("service")),
        "debug-level run must have left structured log events in the ring"
    );
}

#[test]
#[ignore = "heavy: 4 tenants x 30+ requests; run with --ignored in release"]
fn flagship_load_trace_is_clean() {
    let scenario = ServiceScenario {
        tenants: 4,
        events_per_tenant: 24,
        synthesize_every: 4,
        problem_pool: 3,
        burst: 1,
        seed: 1,
    };
    let traces = service_trace(&scenario);
    let total: usize = traces.iter().map(TenantTrace::len).sum();
    assert!(
        total >= 100,
        "flagship run must exceed 100 requests: {total}"
    );
    let check = service_differential(&traces, ServiceConfig::default())
        .expect("flagship run must stay byte-identical and oracle-clean");
    assert_eq!(check.responses, total);
    assert!(check.cache_hits >= 5, "{check:?}");
}
