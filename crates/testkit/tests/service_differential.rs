//! Acceptance tests for the synthesis daemon: the in-process client/server
//! differential over seeded multi-tenant traces.
//!
//! Every daemon response must be byte-identical to the corresponding direct
//! library call, every served schedule passes the three-way oracle, and the
//! daemon drains and exits cleanly at the end of every run. The flagship
//! 4-tenant mixed-load run lives here; `fig_service` in `tsn_bench` is the
//! throughput-measuring sibling of the same harness.

use testkit::service_differential;
use tsn_service::protocol::{Backend, Request, RequestBody};
use tsn_service::ServiceConfig;
use tsn_workload::{pool_problem, service_trace, ServiceScenario, TenantTrace};

#[test]
fn four_tenant_mixed_trace_is_byte_identical_and_oracle_clean() {
    let scenario = ServiceScenario {
        tenants: 4,
        events_per_tenant: 8,
        synthesize_every: 3,
        problem_pool: 2,
        seed: 42,
    };
    let traces = service_trace(&scenario);
    assert_eq!(traces.len(), 4);
    let check = service_differential(&traces, ServiceConfig::default())
        .expect("every daemon response must match the direct library call");
    let total: usize = traces.iter().map(TenantTrace::len).sum();
    assert_eq!(
        check.responses, total,
        "every request got a checked response"
    );
    assert!(
        check.cache_hits >= 1,
        "the shared problem pool must produce cache hits: {check:?}"
    );
    assert!(
        check.oracle_checked >= 12,
        "served schedules must be oracle-checked: {check:?}"
    );
}

#[test]
fn single_worker_daemon_behaves_identically() {
    // One pool worker: everything serializes, the protocol must not care.
    let scenario = ServiceScenario {
        tenants: 2,
        events_per_tenant: 5,
        synthesize_every: 2,
        problem_pool: 1,
        seed: 3,
    };
    let traces = service_trace(&scenario);
    let check = service_differential(
        &traces,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("single-worker run must stay byte-identical");
    assert!(check.cache_hits >= 1, "{check:?}");
}

#[test]
fn cache_disabled_still_byte_identical() {
    // With the cache off every synthesize solves cold; payloads must not
    // change (determinism is a property of the solver, not the cache).
    let scenario = ServiceScenario {
        tenants: 2,
        events_per_tenant: 4,
        synthesize_every: 2,
        problem_pool: 1,
        seed: 9,
    };
    let traces = service_trace(&scenario);
    let check = service_differential(
        &traces,
        ServiceConfig {
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    )
    .expect("uncached run must stay byte-identical");
    assert_eq!(check.cache_hits, 0, "cache disabled means no hits");
}

#[test]
fn forced_backend_requests_are_differential_too() {
    // Hand-built trace: the same pool problem through both backends plus a
    // doomed tenant request; all byte-checked.
    let problem = pool_problem(0);
    let traces = vec![TenantTrace {
        tenant: "manual".into(),
        requests: vec![
            Request {
                id: 1,
                body: RequestBody::Ping,
            },
            Request {
                id: 2,
                body: RequestBody::Synthesize {
                    problem: problem.clone(),
                    config: None,
                    backend: Backend::Monolithic,
                },
            },
            Request {
                id: 3,
                body: RequestBody::Synthesize {
                    problem: problem.clone(),
                    config: None,
                    backend: Backend::Partitioned,
                },
            },
            // Unknown tenant: the error string itself is byte-checked.
            Request {
                id: 4,
                body: RequestBody::Event {
                    tenant: "manual".into(),
                    event: tsn_online::NetworkEvent::RemoveApp {
                        app: tsn_online::AppId(0),
                    },
                },
            },
        ],
    }];
    let check = service_differential(&traces, ServiceConfig::default())
        .expect("forced-backend trace must match the library");
    assert_eq!(check.responses, 4);
    assert_eq!(check.errors, 1, "the unknown-tenant error was compared too");
    assert_eq!(
        check.oracle_checked, 2,
        "both backend reports oracle-checked"
    );
}

#[test]
#[ignore = "heavy: 4 tenants x 30+ requests; run with --ignored in release"]
fn flagship_load_trace_is_clean() {
    let scenario = ServiceScenario {
        tenants: 4,
        events_per_tenant: 24,
        synthesize_every: 4,
        problem_pool: 3,
        seed: 1,
    };
    let traces = service_trace(&scenario);
    let total: usize = traces.iter().map(TenantTrace::len).sum();
    assert!(
        total >= 100,
        "flagship run must exceed 100 requests: {total}"
    );
    let check = service_differential(&traces, ServiceConfig::default())
        .expect("flagship run must stay byte-identical and oracle-clean");
    assert_eq!(check.responses, total);
    assert!(check.cache_hits >= 5, "{check:?}");
}
