//! Batched ≡ sequential differential for the online engine.
//!
//! For seeded dynamic traces chopped into burst windows, and for
//! correlated switch-down traces whose windows *are* the bursts,
//! [`testkit::batch_differential`] drives the same events through a
//! batched engine (one [`process_batch`] call per window) and a sequential
//! engine (one [`process`] call per event) and asserts after every window
//! that the batched engine keeps every loop the sequential engine keeps,
//! that the committed state passes the three-way oracle, and that loops
//! untouched by the window stay bit-identical.
//!
//! The flagship (`#[ignore]`, release/heavy CI) adds the strict claim: on
//! a flapping-partition switch-down trace, the joint path evicts strictly
//! fewer loops than per-event rerouting — per-event processing visits the
//! transient both-arcs-dead state where a loop has no route at all, while
//! the batched window only sees the recovered net state.
//!
//! [`process_batch`]: tsn_online::OnlineEngine::process_batch
//! [`process`]: tsn_online::OnlineEngine::process

use testkit::{batch_differential, scenario_grid, TopologyShape};
use tsn_control::PiecewiseLinearBound;
use tsn_net::{builders, LinkId, LinkSpec, NodeId, NodeKind, Time, Topology};
use tsn_online::{NetworkEvent, OnlineConfig, OnlineEngine};
use tsn_synthesis::ControlApplication;
use tsn_workload::{
    burst_windows, correlated_failure_trace, event_trace, CorrelatedFailureScenario,
    DynamicScenario, DynamicTopology,
};

fn engine_pair(topology: &Topology, config: &OnlineConfig) -> (OnlineEngine, OnlineEngine) {
    (
        OnlineEngine::new(topology.clone(), Time::from_micros(5), config.clone()),
        OnlineEngine::new(topology.clone(), Time::from_micros(5), config.clone()),
    )
}

#[test]
fn windowed_dynamic_traces_batched_equals_sequential() {
    for (scenario, max_window) in [
        (
            DynamicScenario {
                topology: DynamicTopology::Figure1,
                slots: 3,
                events: 24,
                load: 0.8,
                seed: 7,
            },
            3,
        ),
        (
            DynamicScenario {
                topology: DynamicTopology::Grid { switches: 6 },
                slots: 4,
                events: 20,
                load: 0.7,
                seed: 3,
            },
            4,
        ),
        (
            DynamicScenario {
                topology: DynamicTopology::Ring { switches: 5 },
                slots: 3,
                events: 18,
                load: 0.9,
                seed: 12,
            },
            2,
        ),
    ] {
        let (network, events) = event_trace(&scenario);
        let windows = burst_windows(events, scenario.seed, max_window);
        let config = OnlineConfig::default();
        let (mut batched, mut sequential) = engine_pair(&network.topology, &config);
        let check = batch_differential(&mut batched, &mut sequential, &windows)
            .unwrap_or_else(|e| panic!("{scenario:?}: {e}"));
        assert_eq!(check.windows, windows.len());
        assert!(
            check.checked_states >= windows.len() / 2,
            "{scenario:?}: too few oracle-checked states: {check:?}"
        );
        assert!(
            check.joint_windows >= 1,
            "{scenario:?}: the joint path never engaged: {check:?}"
        );
        assert!(
            check.batched_evicted <= check.sequential_evicted,
            "{scenario:?}: batched processing evicted more: {check:?}"
        );
    }
}

#[test]
fn correlated_switch_down_bursts_are_retentive_and_oracle_clean() {
    let scenario = CorrelatedFailureScenario {
        topology: DynamicTopology::Ring { switches: 6 },
        slots: 3,
        loops: 3,
        bursts: 2,
        flap: false,
        seed: 1,
    };
    let (network, windows) = correlated_failure_trace(&scenario);
    let config = OnlineConfig::default();
    let (mut batched, mut sequential) = engine_pair(&network.topology, &config);
    let check = batch_differential(&mut batched, &mut sequential, &windows)
        .expect("correlated bursts must stay retentive and oracle-clean");
    assert!(
        check.batch_reports[0].queued_admissions >= 2,
        "the admission prologue solves jointly: {:?}",
        check.batch_reports[0]
    );
    assert!(
        windows[1].len() >= 2,
        "a switch death downs several links at once"
    );
    assert!(check.batched_evicted <= check.sequential_evicted);
}

/// A 6-switch ring where two non-adjacent switches fail together and one of
/// them recovers within the window: the transient state partitions the ring
/// (`loop-far` has **no** route between its endpoints), the net state does
/// not. Returns the topology, the loop set and the flapping window.
fn partition_flap_case(ring: usize) -> (Topology, Vec<ControlApplication>, Vec<NetworkEvent>) {
    assert!(ring >= 5);
    let spec = LinkSpec::fast_ethernet();
    let (mut topology, switches) = builders::switch_ring(ring, spec);
    let mut attach = |name: &str, kind: NodeKind, switch: NodeId| -> NodeId {
        let node = topology.add_node(name, kind);
        topology
            .connect(node, switch, spec)
            .expect("fresh end station");
        node
    };
    // `loop-far` spans the ring (s0 -> s3); `loop-near-*` live on edges that
    // survive the transient partition and must stay bit-identical.
    let apps = vec![
        ControlApplication {
            name: "loop-far".into(),
            sensor: attach("S-far", NodeKind::Sensor, switches[0]),
            controller: attach("C-far", NodeKind::Controller, switches[3]),
            period: Time::from_millis(10),
            frame_bytes: 1500,
            stability: PiecewiseLinearBound::single_segment(2.0, 0.018),
        },
        ControlApplication {
            name: "loop-near-a".into(),
            sensor: attach("S-a", NodeKind::Sensor, switches[2]),
            controller: attach("C-a", NodeKind::Controller, switches[3]),
            period: Time::from_millis(10),
            frame_bytes: 1500,
            stability: PiecewiseLinearBound::single_segment(2.0, 0.018),
        },
        ControlApplication {
            name: "loop-near-b".into(),
            sensor: attach("S-b", NodeKind::Sensor, switches[ring - 1]),
            controller: attach("C-b", NodeKind::Controller, switches[0]),
            period: Time::from_millis(20),
            frame_bytes: 1500,
            stability: PiecewiseLinearBound::single_segment(2.0, 0.018),
        },
    ];
    let fabric_link = |topology: &Topology, a: NodeId, b: NodeId| -> LinkId {
        topology
            .links()
            .find(|l| l.source() == a && l.target() == b)
            .map(|l| l.id())
            .expect("ring link exists")
    };
    // Victims: s1 (stays dead) and s4 (flaps back within the window). The
    // transient state kills both arcs between s0 and s3; the net state
    // keeps the arc through s4.
    let d = |a: usize, b: usize| NetworkEvent::LinkDown {
        link: fabric_link(&topology, switches[a], switches[b]),
    };
    let u = |a: usize, b: usize| NetworkEvent::LinkUp {
        link: fabric_link(&topology, switches[a], switches[b]),
    };
    let after4 = (4 + 1) % ring;
    let window = vec![
        d(0, 1),
        d(1, 2),
        d(3, 4),
        d(4, after4),
        u(3, 4),
        u(4, after4),
    ];
    (topology, apps, window)
}

fn run_partition_flap(ring: usize) -> (testkit::BatchCheck, usize) {
    let (topology, apps, flap_window) = partition_flap_case(ring);
    let admissions: Vec<NetworkEvent> = apps
        .into_iter()
        .map(|app| NetworkEvent::AdmitApp { app })
        .collect();
    let loops = admissions.len();
    let windows = vec![admissions, flap_window];
    let config = OnlineConfig::default();
    let (mut batched, mut sequential) = engine_pair(&topology, &config);
    let check = batch_differential(&mut batched, &mut sequential, &windows)
        .expect("the flapping partition must stay retentive and oracle-clean");
    assert_eq!(
        batched.live_ids().len(),
        loops,
        "the batched engine keeps every loop through the flap"
    );
    (check, loops)
}

#[test]
fn flapping_partition_joint_path_evicts_strictly_fewer_loops() {
    let (check, _) = run_partition_flap(6);
    assert_eq!(
        check.batched_evicted, 0,
        "the net state is routable, the joint path must keep everyone"
    );
    assert!(
        check.sequential_evicted > 0,
        "per-event rerouting visits the partitioned transient state and \
         must evict the spanning loop: {check:?}"
    );
}

#[test]
#[ignore = "heavy: multi-seed correlated switch-down sweep; run with --ignored in release"]
fn flagship_correlated_switch_down_joint_beats_sequential_on_a_seed() {
    // The ≥ half on every seed, strict win on at least one. The flapping
    // partition rings are the seeds where the strict win is structural
    // (the transient state disconnects a loop, the net state does not);
    // the generator sweep adds coverage of solver-level joint wins.
    let mut strict_wins = 0usize;
    for ring in [5, 6, 8] {
        let (check, _) = run_partition_flap(ring);
        assert!(check.batched_evicted <= check.sequential_evicted);
        if check.batched_evicted < check.sequential_evicted {
            strict_wins += 1;
        }
    }
    for seed in 0..4 {
        let scenario = CorrelatedFailureScenario {
            topology: DynamicTopology::Ring { switches: 6 },
            slots: 4,
            loops: 4,
            bursts: 2,
            flap: true,
            seed,
        };
        let (network, windows) = correlated_failure_trace(&scenario);
        let config = OnlineConfig::default();
        let (mut batched, mut sequential) = engine_pair(&network.topology, &config);
        let check = batch_differential(&mut batched, &mut sequential, &windows)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            check.batched_evicted <= check.sequential_evicted,
            "seed {seed}: joint processing must never lose more loops: {check:?}"
        );
        if check.batched_evicted < check.sequential_evicted {
            strict_wins += 1;
        }
    }
    assert!(
        strict_wins >= 1,
        "the joint path must evict strictly fewer loops on at least one seed"
    );
}

#[test]
#[ignore = "heavy: windowed traces over the whole scenario grid; run with --ignored in release"]
fn grid_mapped_windowed_traces_are_retentive() {
    // Map every light grid row onto a dynamic scenario of the same fabric
    // shape and size, chop its trace into burst windows, and run the
    // batched-vs-sequential differential. Fat trees map onto grids (the
    // dynamic generator does not build fat trees).
    let mut ran = 0usize;
    for spec in scenario_grid() {
        let topology = match spec.shape {
            TopologyShape::Ring => DynamicTopology::Ring {
                switches: spec.switches,
            },
            TopologyShape::Line
            | TopologyShape::Grid
            | TopologyShape::ErdosRenyi
            | TopologyShape::FatTree => DynamicTopology::Grid {
                switches: spec.switches.min(8),
            },
        };
        let scenario = DynamicScenario {
            topology,
            slots: spec.applications,
            events: 12,
            load: 0.8,
            seed: spec.seed(),
        };
        let (network, events) = event_trace(&scenario);
        let windows = burst_windows(events, spec.seed(), 4);
        let config = OnlineConfig::default();
        let (mut batched, mut sequential) = engine_pair(&network.topology, &config);
        let check = batch_differential(&mut batched, &mut sequential, &windows)
            .unwrap_or_else(|e| panic!("grid row {}: {e}", spec.index));
        assert!(check.batched_evicted <= check.sequential_evicted);
        ran += 1;
    }
    assert!(ran >= 60, "the sweep must cover the light grid: {ran}");
}
