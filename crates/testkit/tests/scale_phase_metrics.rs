//! Regression test for the scale-engine phase-metric split.
//!
//! `scale_repair_seconds` must mean *straggler repair* (SMT re-solve of the
//! apps greedy placement could not fit) and nothing else. It used to also
//! receive the cross-partition conflict-repair rounds, so a heuristic-first
//! run that repaired zero apps could still report a multi-second
//! `repair_p95_us` in `BENCH_scale.json` — a histogram-bucket bound from a
//! conflict round, not a repair. Conflict rounds now observe into their own
//! `scale_conflict_repair_seconds`.
//!
//! The test lives in its own integration binary: the telemetry registry is
//! process-global and cargo runs test binaries one after another, so no
//! parallel test can observe into the scale histograms between our
//! snapshots.

use tsn_scale::{ScaleConfig, ScaleSynthesizer, SynthesisStrategy};
use tsn_workload::{large_scale_problem, LargeScaleScenario, LargeTopology};

#[test]
fn straggler_repair_histogram_stays_empty_when_nothing_was_repaired() {
    let scenario = LargeScaleScenario {
        topology: LargeTopology::FatTree,
        switches: 32,
        streams: 60,
        seed: 1,
        fast_stream_percent: 12,
    };
    let problem = large_scale_problem(&scenario).expect("generator instances are well-formed");
    let registry = tsn_telemetry::registry();
    let heuristic = registry.histogram("scale_heuristic_seconds");
    let repair = registry.histogram("scale_repair_seconds");
    let conflict = registry.histogram("scale_conflict_repair_seconds");
    let heuristic_before = heuristic.snapshot();
    let repair_before = repair.snapshot();
    let conflict_before = conflict.snapshot();

    let config = ScaleConfig {
        strategy: SynthesisStrategy::HeuristicFirst,
        fallback_monolithic: false,
        ..ScaleConfig::default()
    };
    let report = ScaleSynthesizer::new(config)
        .synthesize(&problem)
        .expect("the instance solves heuristically");

    // The scenario is small enough that greedy placement fits everything;
    // if a generator change ever introduces stragglers here, pick another
    // seed — the point of this test needs a zero-repair run.
    assert_eq!(
        report.heuristic.repaired_apps, 0,
        "expected a fully greedy placement: {:?}",
        report.heuristic
    );
    assert_eq!(report.heuristic.fallback_partitions, 0);
    assert!(report.heuristic.placed_apps > 0);

    let heuristic_delta = heuristic.delta_since(&heuristic_before);
    let repair_delta = repair.delta_since(&repair_before);
    let conflict_delta = conflict.delta_since(&conflict_before);
    assert!(
        heuristic_delta.count() > 0,
        "every partition observes its placement time"
    );
    // The regression: conflict-repair rounds used to observe into the
    // straggler-repair histogram, so a zero-repair run still reported a
    // nonzero (bucket-bound) repair p95.
    assert_eq!(
        repair_delta.count(),
        0,
        "a zero-repair run must leave scale_repair_seconds untouched \
         (p95 would read {:?})",
        repair_delta.p95()
    );
    assert_eq!(
        conflict_delta.count() as usize,
        report.repairs.len(),
        "each conflict-repair round observes exactly once into its own \
         scale_conflict_repair_seconds histogram"
    );
}
