//! Acceptance tests for the sharded service fabric: the same tenant
//! traces served by a single daemon and by a router-fronted fleet must
//! answer byte-identically — including across a mid-trace shard drain,
//! where every migrated tenant must resume on its migrated warm session
//! instead of paying a cold re-solve.

use testkit::router_differential;
use tsn_net::json::Json;
use tsn_service::ServiceConfig;
use tsn_workload::{service_trace, ServiceScenario, TenantTrace};

fn scenario(seed: u64) -> Vec<TenantTrace> {
    service_trace(&ServiceScenario {
        tenants: 4,
        events_per_tenant: 6,
        synthesize_every: 3,
        problem_pool: 2,
        burst: 1,
        seed,
    })
}

#[test]
fn fleets_of_1_2_and_4_shards_answer_byte_identically_to_one_daemon() {
    let traces = scenario(42);
    let total: usize = traces.iter().map(TenantTrace::len).sum();
    for shards in [1, 2, 4] {
        let check = router_differential(&traces, ServiceConfig::default(), shards, None)
            .unwrap_or_else(|e| panic!("{shards}-shard fleet diverged: {e}"));
        assert_eq!(
            check.responses, total,
            "{shards} shards: every request got a checked response"
        );
        assert!(
            check.oracle_checked >= 8,
            "{shards} shards: served schedules must be oracle-checked: {check:?}"
        );
        assert!(
            check.cache_hits >= 1,
            "{shards} shards: the shared problem pool must keep hitting the \
             per-shard caches: {check:?}"
        );
        let stats = check.fleet_stats.as_ref().expect("fleet stats");
        assert_eq!(
            stats.get("shards").and_then(Json::as_i64),
            Some(shards as i64),
            "aggregated stats must report the active fleet size: {stats}"
        );
        assert_eq!(
            stats.get("migrations").and_then(Json::as_i64),
            Some(0),
            "no drain, no migrations: {stats}"
        );
        assert_eq!(check.drained_shard, None);
    }
}

#[test]
fn mid_trace_drain_migrates_warm_sessions_without_a_cold_resolve() {
    let traces = scenario(7);
    let total: usize = traces.iter().map(TenantTrace::len).sum();
    // Drain halfway through the round-robin sequence: every tenant is
    // open and warm by then, so the drained shard's tenants migrate with
    // live solver sessions.
    let check = router_differential(&traces, ServiceConfig::default(), 3, Some(total / 2))
        .expect("the drain must be byte-transparent");
    assert_eq!(check.responses, total);
    let drained = check.drained_shard.expect("a shard was drained");
    assert!(drained < 3);
    assert!(
        check.migrated >= 1,
        "the drain target is chosen to home at least one tenant: {check:?}"
    );
    assert!(
        check.warm_resumes >= 1,
        "at least one migrated tenant must provably resume warm: {check:?}"
    );
    let stats = check.fleet_stats.as_ref().expect("fleet stats");
    assert_eq!(
        stats.get("migrations").and_then(Json::as_i64),
        Some(check.migrated as i64),
        "aggregated stats must carry the migration count: {stats}"
    );
    assert_eq!(
        stats.get("shards").and_then(Json::as_i64),
        Some(2),
        "after the drain two shards stay active: {stats}"
    );
}
