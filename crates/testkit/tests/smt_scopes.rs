//! Differential coverage for `tsn_smt` push/pop scopes and assumption-based
//! solving.
//!
//! Ground truth per instance: for every full assignment of the Boolean
//! space, the brute-force reference decides feasibility (clauses + units +
//! the implied difference system). The *satisfiable set* of a model is the
//! set of assignments the reference accepts; the solver is asked the same
//! question via `solve_with_assumptions` pinning every Boolean. The test
//! asserts that
//!
//! * the per-assignment verdicts agree with brute force (assumptions
//!   differential),
//! * pushing a scope and adding constraints only ever *shrinks* the set,
//! * popping the scope restores exactly the pre-push satisfiable set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use testkit::{brute_force_sat, build_model, random_instance, DiffInstance};
use tsn_smt::{Lit, Model, SolveOptions};

/// The satisfiable set of an instance according to the brute-force
/// reference: one bool per full Boolean assignment (bit `i` of the mask is
/// Boolean index `i`).
fn reference_set(inst: &DiffInstance) -> Vec<bool> {
    let total = inst.total_bools();
    (0..(1u32 << total))
        .map(|mask| {
            let mut pinned = inst.clone();
            for b in 0..total {
                pinned.units.push((b, mask & (1 << b) != 0));
            }
            brute_force_sat(&pinned)
        })
        .collect()
}

/// The satisfiable set according to the solver, probing every assignment
/// with assumptions (nothing is ever added to the model).
fn solver_set(model: &mut Model, lits: &[Lit]) -> Vec<bool> {
    solver_set_with(model, lits, SolveOptions::default())
}

/// [`solver_set`] under explicit solve options (e.g. a forced clause-DB
/// reduction threshold). Satisfiable probes are re-verified against the
/// model, so an unsound assignment fails here rather than passing silently.
fn solver_set_with(model: &mut Model, lits: &[Lit], options: SolveOptions) -> Vec<bool> {
    (0..(1u32 << lits.len()))
        .map(|mask| {
            let assumptions: Vec<Lit> = lits
                .iter()
                .enumerate()
                .map(|(b, &l)| if mask & (1 << b) != 0 { l } else { !l })
                .collect();
            let outcome = model.solve_with_assumptions(&assumptions, options);
            if let Some(assignment) = outcome.assignment() {
                model
                    .verify(assignment)
                    .expect("satisfiable probes produce real models");
            }
            outcome.is_sat()
        })
        .collect()
}

#[test]
fn popping_a_scope_restores_the_satisfiable_set() {
    let mut rng = StdRng::seed_from_u64(0x5C0B_ED1F);
    let mut nontrivial = 0usize;
    for round in 0..25 {
        let inst = random_instance(&mut rng);
        let built = build_model(&inst);
        let mut model = built.model;
        let lits = built.lits;
        let ints = built.ints;

        // Assumption differential: the solver's satisfiable set must equal
        // the brute-force reference's, assignment by assignment.
        let pre = reference_set(&inst);
        let solver_pre = solver_set(&mut model, &lits);
        assert_eq!(
            solver_pre, pre,
            "round {round}: assumption probing disagrees with brute force: {inst:?}"
        );
        if pre.iter().any(|&s| s) && pre.iter().any(|&s| !s) {
            nontrivial += 1;
        }

        // Push a scope and constrain further: random clauses over existing
        // literals plus a fresh difference atom between two integers.
        model.push();
        let extra_clauses = rng.gen_range(1..4);
        for _ in 0..extra_clauses {
            let len = rng.gen_range(1..3);
            let clause: Vec<Lit> = (0..len)
                .map(|_| {
                    let l = lits[rng.gen_range(0..lits.len())];
                    if rng.gen_bool(0.5) {
                        l
                    } else {
                        !l
                    }
                })
                .collect();
            model.add_clause(clause);
        }
        if ints.len() >= 2 {
            let x = ints[rng.gen_range(0..ints.len())];
            let mut y = ints[rng.gen_range(0..ints.len())];
            if x == y {
                y = ints[(ints.iter().position(|&v| v == x).unwrap() + 1) % ints.len()];
            }
            let atom = model.diff_le(x, y, rng.gen_range(-5..5));
            model.assert_lit(atom);
        }

        // Inside the scope the set can only shrink.
        let inside = solver_set(&mut model, &lits);
        for (mask, (&now, &before)) in inside.iter().zip(pre.iter()).enumerate() {
            assert!(
                !now || before,
                "round {round}: assignment {mask:#b} became satisfiable by ADDING constraints"
            );
        }

        // Popping restores exactly the pre-push satisfiable set.
        model.pop();
        let after = solver_set(&mut model, &lits);
        assert_eq!(
            after, pre,
            "round {round}: popping the scope did not restore the satisfiable set: {inst:?}"
        );
    }
    assert!(
        nontrivial >= 5,
        "the generator must produce instances with mixed verdicts ({nontrivial})"
    );
}

#[test]
fn clause_db_reduction_preserves_the_satisfiable_set() {
    // The same instance set, probed with the default reduction threshold and
    // with reduction forced at every restart (`reduce_threshold: Some(0)`):
    // the satisfiable sets must be identical to each other and to brute
    // force, and every satisfiable probe must still produce a verifiable
    // model (checked inside `solver_set_with`).
    let forced = SolveOptions {
        reduce_threshold: Some(0),
        ..SolveOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(0x0DE1_E7ED);
    for round in 0..25 {
        let inst = random_instance(&mut rng);
        let reference = reference_set(&inst);
        let built = build_model(&inst);
        let mut model = built.model;
        let lits = built.lits;
        let plain = solver_set_with(&mut model, &lits, SolveOptions::default());
        let reduced = solver_set_with(&mut model, &lits, forced);
        assert_eq!(
            plain, reference,
            "round {round}: default options disagree with brute force: {inst:?}"
        );
        assert_eq!(
            reduced, reference,
            "round {round}: forced clause-DB reduction changed a verdict: {inst:?}"
        );
    }
}

#[test]
fn forced_reduction_deletes_clauses_without_changing_verdicts() {
    // A gated pigeonhole: the selector literal arms six at-least-one rows
    // over five holes, so assuming it forces enough conflicts for the Luby
    // restarts — and, with a zero threshold, for actual clause deletion —
    // while its negation keeps the model satisfiable. Both verdicts must
    // match the unreduced solver's.
    let forced = SolveOptions {
        reduce_threshold: Some(0),
        ..SolveOptions::default()
    };
    let mut m = Model::new();
    let gate = m.new_bool("gate").lit();
    let vars: Vec<Vec<Lit>> = (0..6)
        .map(|i| {
            (0..5)
                .map(|j| m.new_bool(format!("p{i}h{j}")).lit())
                .collect()
        })
        .collect();
    for row in &vars {
        let mut clause = vec![!gate];
        clause.extend(row.iter().copied());
        m.add_clause(clause);
    }
    for j in 0..5 {
        let column: Vec<Lit> = vars.iter().map(|row| row[j]).collect();
        for a in 0..column.len() {
            for b in (a + 1)..column.len() {
                m.add_clause([!column[a], !column[b]]);
            }
        }
    }
    let open = m.solve_with_assumptions(&[!gate], forced);
    m.verify(open.assignment().expect("ungated model is satisfiable"))
        .unwrap();
    assert!(m.solve_with_assumptions(&[gate], forced).is_unsat());
    let stats = m.last_stats().clone();
    assert!(stats.restarts > 0, "the gated pigeonhole must restart");
    assert!(
        stats.deleted_clauses > 0,
        "a zero threshold must actually delete learned clauses: {stats}"
    );
    // The unreduced solver agrees on both verdicts.
    assert!(m
        .solve_with_assumptions(&[gate], SolveOptions::default())
        .is_unsat());
    assert_eq!(m.last_stats().deleted_clauses, 0);
    assert!(m
        .solve_with_assumptions(&[!gate], SolveOptions::default())
        .is_sat());
}

#[test]
fn warm_started_scoped_probing_agrees_with_cold() {
    // The same probe sequence with warm starts on and off must produce
    // identical verdicts (warm start is a performance feature, never a
    // semantic one), including across push/pop boundaries.
    let mut rng_a = StdRng::seed_from_u64(0xFEED);
    let mut rng_b = StdRng::seed_from_u64(0xFEED);
    for _ in 0..10 {
        let inst_a = random_instance(&mut rng_a);
        let inst_b = random_instance(&mut rng_b);
        let mut cold = build_model(&inst_a).model;
        let built = build_model(&inst_b);
        let mut warm = built.model;
        warm.set_warm_start(true);
        let lits = built.lits;

        let cold_verdicts = {
            let v1 = cold.solve().is_sat();
            cold.push();
            if !lits.is_empty() {
                cold.assert_lit(lits[0]);
            }
            let v2 = cold.solve().is_sat();
            cold.pop();
            let v3 = cold.solve().is_sat();
            (v1, v2, v3)
        };
        let warm_verdicts = {
            let v1 = warm.solve().is_sat();
            warm.push();
            if !lits.is_empty() {
                warm.assert_lit(lits[0]);
            }
            let v2 = warm.solve().is_sat();
            warm.pop();
            let v3 = warm.solve().is_sat();
            (v1, v2, v3)
        };
        assert_eq!(cold_verdicts, warm_verdicts);
        assert_eq!(cold_verdicts.0, cold_verdicts.2, "pop must restore verdict");
    }
}
