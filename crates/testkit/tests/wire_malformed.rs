//! Malformed-input corpus for every wire module in the workspace.
//!
//! The daemon reads hostile bytes off the network, so *no* decoder may
//! panic: truncated documents, garbled bytes, type confusion and missing
//! members must all surface as typed errors (`JsonError` / `Err` payloads).
//! The corpus is built from valid encodings of real values — every prefix
//! truncation, single-byte garbling at sampled offsets, and a set of
//! hand-written type-confusion documents — and fed to every `from_json`
//! entry point across `tsn_net::json`, `tsn_synthesis::wire`,
//! `tsn_online::wire`, `tsn_scale::wire` and the `tsn_service` envelopes.

use tsn_control::PiecewiseLinearBound;
use tsn_net::json::Json;
use tsn_net::{builders, LinkSpec, Time};
use tsn_online::{NetworkEvent, OnlineConfig, OnlineEngine};
use tsn_service::protocol::{Backend, Request, RequestBody, Response};
use tsn_synthesis::{ControlApplication, SynthesisConfig, SynthesisProblem, Synthesizer};

/// A structured-log event with hostile-ish content: every value kind, a
/// field value that needs escaping, a non-finite float (encodes as `null`).
fn log_specimen() -> tsn_telemetry::log::LogEvent {
    use tsn_telemetry::log::{Level, LogEvent, Value};
    LogEvent {
        ts_ns: 1_234_000,
        level: Level::Warn,
        target: "service.request".into(),
        message: "request failed".into(),
        fields: vec![
            ("tenant".into(), Value::from("ghost \"t\"\n")),
            ("attempt".into(), Value::from(3i64)),
            ("fatal".into(), Value::from(false)),
            ("ratio".into(), Value::from(f64::NAN)),
        ],
    }
}

/// A valid specimen line for every wire document kind in the workspace.
fn specimens() -> Vec<(&'static str, String)> {
    let net = builders::figure1_example(LinkSpec::fast_ethernet());
    let mut problem = SynthesisProblem::new(net.topology.clone(), Time::from_micros(5));
    for i in 0..2 {
        problem
            .add_application(
                format!("loop-{i}"),
                net.sensors[i],
                net.controllers[i],
                Time::from_millis(10),
                1500,
                PiecewiseLinearBound::single_segment(2.0, 0.018),
            )
            .unwrap();
    }
    let report = Synthesizer::new(SynthesisConfig {
        stages: 1,
        ..SynthesisConfig::default()
    })
    .synthesize(&problem)
    .unwrap();

    let mut engine = OnlineEngine::new(
        net.topology.clone(),
        Time::from_micros(5),
        OnlineConfig::default(),
    );
    let app = |i: u32, name: &str| ControlApplication {
        name: name.into(),
        sensor: net.sensors[i as usize],
        controller: net.controllers[i as usize],
        period: Time::from_millis(10),
        frame_bytes: 1500,
        stability: PiecewiseLinearBound::single_segment(2.0, 0.018),
    };
    let event = NetworkEvent::AdmitApp {
        app: app(0, "wire-loop"),
    };
    let event_report = engine.process(event.clone());
    // Exported while the engine holds a live solver session, so the
    // snapshot specimen carries the serialized-model `session` member and
    // the fuzzers below reach the model-state decoder.
    let snapshot = engine.export_session();
    assert!(
        snapshot.session.is_some(),
        "the snapshot specimen must carry a warm session"
    );
    let batch_events = vec![
        NetworkEvent::AdmitApp {
            app: app(1, "wire-batch"),
        },
        NetworkEvent::LinkDown {
            link: tsn_net::LinkId::new(0),
        },
        NetworkEvent::LinkUp {
            link: tsn_net::LinkId::new(0),
        },
    ];
    let batch_report = engine.process_batch(batch_events.clone());

    vec![
        (
            "topology",
            tsn_net::wire::topology_to_json(&net.topology).to_string(),
        ),
        (
            "problem",
            tsn_synthesis::wire::problem_to_json(&problem).to_string(),
        ),
        (
            "config",
            tsn_synthesis::wire::config_to_json(&SynthesisConfig::default()).to_string(),
        ),
        (
            "report",
            tsn_synthesis::wire::report_to_json(&report).to_string(),
        ),
        ("event", tsn_online::wire::event_to_json(&event).to_string()),
        (
            "event_report",
            tsn_online::wire::event_report_to_json(&event_report).to_string(),
        ),
        (
            "online_config",
            tsn_online::wire::online_config_to_json(&OnlineConfig::default()).to_string(),
        ),
        (
            "batch_report",
            tsn_online::wire::batch_report_to_json(&batch_report).to_string(),
        ),
        (
            "session_snapshot",
            tsn_online::wire::session_snapshot_to_json(&snapshot).to_string(),
        ),
        (
            "migrate_out_request",
            Request {
                id: 7,
                trace: None,
                body: RequestBody::MigrateOut {
                    tenant: "wire-tenant".into(),
                },
            }
            .to_line(),
        ),
        (
            "migrate_in_request",
            Request {
                id: 8,
                trace: Some(17),
                body: RequestBody::MigrateIn {
                    tenant: "wire-tenant".into(),
                    snapshot: Box::new(snapshot.clone()),
                },
            }
            .to_line(),
        ),
        (
            "migrated_out_response",
            Response {
                id: 7,
                trace: None,
                cached: false,
                elapsed_us: 41,
                retry_after_ms: None,
                outcome: Ok(Json::obj([
                    ("type", Json::from("migrated_out")),
                    ("tenant", Json::from("wire-tenant")),
                    ("loops", Json::Int(1)),
                    (
                        "snapshot",
                        tsn_online::wire::session_snapshot_to_json(&snapshot),
                    ),
                ])),
            }
            .to_line(),
        ),
        // (The router-only `drain_shard` request has no library decoder —
        // its hostile variants live in the type-confusion corpus instead.)
        (
            "directory_response",
            Response {
                id: 9,
                trace: Some(-3),
                cached: false,
                elapsed_us: 210,
                retry_after_ms: None,
                outcome: Ok(Json::obj([
                    ("type", Json::from("directory")),
                    ("tenants", Json::Int(2)),
                    ("migrations", Json::Int(1)),
                    (
                        "shards",
                        Json::Arr(vec![
                            Json::obj([
                                ("shard", Json::Int(0)),
                                ("addr", Json::from("127.0.0.1:4521")),
                                ("active", Json::Bool(false)),
                                ("tenants", Json::Int(0)),
                                ("healthy", Json::Bool(true)),
                                ("shard_id", Json::Int(0)),
                                ("sessions", Json::Int(0)),
                            ]),
                            Json::obj([
                                ("shard", Json::Int(1)),
                                ("addr", Json::from("127.0.0.1:4522")),
                                ("active", Json::Bool(true)),
                                ("tenants", Json::Int(2)),
                                ("healthy", Json::Bool(false)),
                                ("error", Json::from("shard 1 unreachable: refused")),
                            ]),
                        ]),
                    ),
                ])),
            }
            .to_line(),
        ),
        (
            "batch_request",
            Request {
                id: 4,
                trace: None,
                body: RequestBody::EventBatch {
                    tenant: "wire-tenant".into(),
                    events: batch_events,
                },
            }
            .to_line(),
        ),
        (
            "request",
            Request {
                id: 3,
                trace: None,
                body: RequestBody::Synthesize {
                    problem: problem.clone(),
                    config: None,
                    backend: Backend::Auto,
                },
            }
            .to_line(),
        ),
        (
            "traced_request",
            Request {
                id: 3,
                trace: Some(91_052),
                body: RequestBody::Ping,
            }
            .to_line(),
        ),
        (
            "metrics_request",
            Request {
                id: 5,
                trace: Some(-1),
                body: RequestBody::Metrics,
            }
            .to_line(),
        ),
        (
            "health_request",
            Request {
                id: 6,
                trace: None,
                body: RequestBody::Health,
            }
            .to_line(),
        ),
        (
            "health_response",
            Response {
                id: 6,
                trace: None,
                cached: false,
                elapsed_us: 3,
                retry_after_ms: None,
                outcome: Ok(Json::obj([
                    ("type", Json::from("health")),
                    ("uptime_us", Json::Int(7_000)),
                    ("tenants", Json::Int(1)),
                    ("workers", Json::Int(4)),
                    ("workers_busy", Json::Int(0)),
                    ("queue_depth", Json::Int(0)),
                    ("requests", Json::Int(3)),
                    ("errors", Json::Int(1)),
                    (
                        "recent_log",
                        Json::Arr(vec![tsn_service::protocol::log_event_to_json(
                            &log_specimen(),
                        )]),
                    ),
                ])),
            }
            .to_line(),
        ),
        (
            "response",
            Response {
                id: 3,
                trace: None,
                cached: false,
                elapsed_us: 12,
                retry_after_ms: None,
                outcome: Ok(Json::obj([("type", Json::from("pong"))])),
            }
            .to_line(),
        ),
        (
            "shed_response",
            tsn_service::protocol::shed_response(
                11,
                Some(4),
                "overloaded: 1024 jobs queued at watermark 1024".to_string(),
                100,
            )
            .to_line(),
        ),
        (
            "metrics_response",
            Response {
                id: 5,
                trace: Some(-1),
                cached: false,
                elapsed_us: 88,
                retry_after_ms: None,
                outcome: Ok(Json::obj([
                    ("type", Json::from("metrics")),
                    (
                        "exposition",
                        Json::from(
                            "# TYPE requests_total counter\nrequests_total 37\n\
                             # TYPE solve_seconds histogram\n\
                             solve_seconds_bucket{le=\"0.001024\"} 2\n\
                             solve_seconds_bucket{le=\"+Inf\"} 2\n\
                             solve_seconds_sum 0.0011\nsolve_seconds_count 2\n",
                        ),
                    ),
                ])),
            }
            .to_line(),
        ),
    ]
}

/// Feeds one corrupted line to every decoder; each must return (any value
/// or a typed error) without panicking. Returns how many decoders accepted
/// the input.
fn decode_everything(line: &str) -> usize {
    let mut accepted = 0usize;
    let Ok(doc) = Json::parse(line) else {
        // The document layer already rejected it — also exercise the two
        // line-level entry points, which must reject too, not panic.
        assert!(Request::parse_line(line).is_err());
        assert!(Response::parse_line(line).is_err());
        return 0;
    };
    accepted += usize::from(tsn_net::wire::topology_from_json(&doc).is_ok());
    accepted += usize::from(tsn_net::wire::link_spec_from_json(&doc).is_ok());
    accepted += usize::from(tsn_synthesis::wire::problem_from_json(&doc).is_ok());
    accepted += usize::from(tsn_synthesis::wire::config_from_json(&doc).is_ok());
    accepted += usize::from(tsn_synthesis::wire::report_from_json(&doc).is_ok());
    accepted += usize::from(tsn_synthesis::wire::schedule_from_json(&doc).is_ok());
    accepted += usize::from(tsn_synthesis::wire::route_from_json(&doc).is_ok());
    accepted += usize::from(tsn_synthesis::wire::application_from_json(&doc).is_ok());
    accepted += usize::from(tsn_online::wire::event_from_json(&doc).is_ok());
    accepted += usize::from(tsn_online::wire::trace_from_json(&doc).is_ok());
    accepted += usize::from(tsn_online::wire::decision_from_json(&doc).is_ok());
    accepted += usize::from(tsn_online::wire::event_report_from_json(&doc).is_ok());
    accepted += usize::from(tsn_online::wire::batch_report_from_json(&doc).is_ok());
    accepted += usize::from(tsn_online::wire::online_config_from_json(&doc).is_ok());
    accepted += usize::from(tsn_online::wire::session_snapshot_from_json(&doc).is_ok());
    accepted += usize::from(tsn_scale::wire::scale_report_from_json(&doc).is_ok());
    accepted += usize::from(tsn_scale::wire::partition_report_from_json(&doc).is_ok());
    accepted += usize::from(tsn_scale::wire::repair_report_from_json(&doc).is_ok());
    accepted += usize::from(Request::from_json(&doc).is_ok());
    accepted += usize::from(Response::from_json(&doc).is_ok());
    accepted
}

#[test]
fn truncations_never_panic() {
    for (kind, line) in specimens() {
        // Every prefix at a char boundary (stride keeps the corpus fast on
        // long documents while still covering the interesting boundaries).
        let stride = (line.len() / 97).max(1);
        let mut checked = 0usize;
        for end in (0..line.len()).step_by(stride) {
            if !line.is_char_boundary(end) {
                continue;
            }
            let truncated = &line[..end];
            // A strict prefix of a JSON document is never a complete valid
            // document of the same kind — decoding must fail or the parse
            // itself must fail; panics fail the test by themselves.
            let _ = decode_everything(truncated);
            checked += 1;
        }
        assert!(checked > 10, "{kind}: corpus too small ({checked})");
    }
}

#[test]
fn garbled_bytes_never_panic() {
    for (kind, line) in specimens() {
        let bytes = line.as_bytes();
        let stride = (bytes.len() / 61).max(1);
        for at in (0..bytes.len()).step_by(stride) {
            for replacement in [b'"', b'{', b'}', b'[', b'0', b'x', b',', 0xFF] {
                let mut garbled = bytes.to_vec();
                garbled[at] = replacement;
                // Invalid UTF-8 variants exercise the parser's byte layer.
                let garbled = String::from_utf8_lossy(&garbled).into_owned();
                let _ = decode_everything(&garbled);
            }
        }
        // The pristine line still decodes under at least one decoder.
        assert!(
            decode_everything(&line) >= 1,
            "{kind}: specimen no longer decodes"
        );
    }
}

#[test]
fn type_confusion_is_rejected_everywhere() {
    // Hand-written hostile documents: wrong member types, wrong shapes,
    // deep nesting, huge numbers, evil strings.
    let corpus = [
        "null",
        "true",
        "-7",
        "1e308",
        "\"just a string\"",
        "[]",
        "{}",
        r#"{"id": {}, "request": []}"#,
        r#"{"id": 1, "request": {"type": 42}}"#,
        r#"{"id": 1, "request": {"type": "synthesize", "problem": 3}}"#,
        r#"{"id": 1, "request": {"type": "open_tenant", "tenant": 1, "topology": {}, "forwarding_delay": "x", "config": null}}"#,
        r#"{"id": 1, "request": {"type": "event", "tenant": "t", "event": {"type": "admit_app", "app": {"name": "x"}}}}"#,
        r#"{"nodes": [{"name": "a", "kind": "switch"}], "links": [{"a": 0, "b": 0, "spec": {"rate_bps": 1, "prop_ns": 0}}]}"#,
        r#"{"nodes": "many", "links": "few"}"#,
        r#"{"hyperperiod": "soon", "messages": []}"#,
        r#"{"secs": -1, "nanos": 0}"#,
        r#"{"secs": 0, "nanos": 9999999999}"#,
        r#"{"stage": 0, "messages": "several"}"#,
        r#"{"type": "rerouted", "rescheduled": [0.5], "evicted": []}"#,
        r#"{"id": 1, "request": {"type": "event_batch", "tenant": "t"}}"#,
        r#"{"id": 1, "request": {"type": "event_batch", "tenant": "t", "events": 7}}"#,
        r#"{"id": 1, "request": {"type": "event_batch", "tenant": "t", "events": [{"type": "admit_app"}]}}"#,
        r#"{"reports": [], "joint": "yes", "affected_loops": 0, "queued_admissions": 0, "latency": {"secs": 0, "nanos": 0}, "solver_decisions": 0, "solver_conflicts": 0}"#,
        r#"{"reports": [{"index": 0}], "joint": true, "affected_loops": 0, "queued_admissions": 0, "latency": {"secs": 0, "nanos": 0}, "solver_decisions": 0, "solver_conflicts": 0}"#,
        r#"{"reports": [], "joint": true, "affected_loops": -4, "queued_admissions": 0, "latency": {"secs": 0, "nanos": 0}, "solver_decisions": 0, "solver_conflicts": 0}"#,
        r#"{"type": "stability_aware", "granularity": true}"#,
        r#"{"route_strategy": {"type": "k_shortest", "k": -3}, "stages": 1, "mode": {"type": "deadline_only"}, "max_conflicts_per_stage": null, "timeout_per_stage": null, "verify": true}"#,
        r#"{"id": 9007199254740993, "cached": "yes", "elapsed_us": 0, "ok": {}}"#,
        r#"{"id": 1, "trace": "envelope", "request": {"type": "ping"}}"#,
        r#"{"id": 1, "trace": 0.5, "request": {"type": "ping"}}"#,
        r#"{"id": 1, "trace": [91052], "request": {"type": "metrics"}}"#,
        r#"{"id": 1, "trace": {}, "cached": false, "elapsed_us": 0, "ok": {}}"#,
        r#"{"id": 1, "request": {"type": "metrics", "exposition": 7}}"#,
        r#"{"id": 1, "request": {"type": "health", "tenant": 7}}"#,
        r#"{"id": 1, "request": {"type": "migrate_out"}}"#,
        r#"{"id": 1, "request": {"type": "migrate_out", "tenant": 9}}"#,
        r#"{"id": 1, "request": {"type": "migrate_in", "tenant": "t"}}"#,
        r#"{"id": 1, "request": {"type": "migrate_in", "tenant": "t", "snapshot": 7}}"#,
        r#"{"id": 1, "request": {"type": "migrate_in", "tenant": "t", "snapshot": {"app_count": "many"}}}"#,
        r#"{"id": 1, "request": {"type": "drain_shard", "shard": "zero"}}"#,
        r#"{"id": 1, "request": {"type": "drain_shard", "shard": -2}}"#,
        r#"{"id": 1, "cached": false, "elapsed_us": 0, "ok": {"type": "directory", "shards": 7}}"#,
        r#"{"id": 1, "cached": false, "elapsed_us": 0, "ok": {"type": "shard_drained", "migrated": "all"}}"#,
        r#"{"id": "soon", "request": {"type": "health"}}"#,
        r#"{"id": 1, "cached": false, "elapsed_us": 0, "ok": {"type": "health", "recent_log": 7}}"#,
        r#"{"id": 1, "cached": false, "elapsed_us": 0, "ok": {"type": "health", "recent_log": [{"ts_ns": "late"}], "uptime_us": -3}}"#,
        "[[[[[[[[[[[[[[[[[[[[]]]]]]]]]]]]]]]]]]]]",
        r#"{"a": {"b": {"c": {"d": {"e": {"f": {"g": {"h": null}}}}}}}}"#,
    ];
    for line in corpus {
        let _ = decode_everything(line);
    }
    // A couple of spot checks that specific confusions yield errors, not
    // lenient accepts.
    assert!(tsn_synthesis::wire::config_from_json(
        &Json::parse(r#"{"route_strategy": {"type": "k_shortest", "k": -3}, "stages": 1, "mode": {"type": "deadline_only"}, "max_conflicts_per_stage": null, "timeout_per_stage": null, "verify": true}"#).unwrap()
    ).is_err());
    assert!(tsn_synthesis::wire::duration_from_json(
        &Json::parse(r#"{"secs": -1, "nanos": 0}"#).unwrap()
    )
    .is_err());
    assert!(tsn_synthesis::wire::duration_from_json(
        &Json::parse(r#"{"secs": 0, "nanos": 9999999999}"#).unwrap()
    )
    .is_err());
    assert!(
        Request::parse_line(r#"{"id": 1, "request": {"type": 42}}"#).is_err(),
        "non-string request types must be rejected"
    );
    assert!(
        Request::parse_line(
            r#"{"id": 1, "request": {"type": "event_batch", "tenant": "t", "events": 7}}"#
        )
        .is_err(),
        "a non-array batch event list must be rejected"
    );
    assert!(tsn_online::wire::batch_report_from_json(
        &Json::parse(r#"{"reports": [], "joint": true, "affected_loops": -4, "queued_admissions": 0, "latency": {"secs": 0, "nanos": 0}, "solver_decisions": 0, "solver_conflicts": 0}"#).unwrap()
    )
    .is_err(), "negative loop counts must be rejected");
    // Trace ids in the envelope: absent and null are fine, any non-integer
    // is a typed error on both envelope kinds — never a silent drop.
    assert_eq!(
        Request::parse_line(r#"{"id": 1, "trace": null, "request": {"type": "ping"}}"#)
            .unwrap()
            .trace,
        None
    );
    assert_eq!(
        Request::parse_line(r#"{"id": 1, "trace": -91052, "request": {"type": "metrics"}}"#)
            .unwrap()
            .trace,
        Some(-91_052)
    );
    for bad in [
        r#"{"id": 1, "trace": "envelope", "request": {"type": "ping"}}"#,
        r#"{"id": 1, "trace": 0.5, "request": {"type": "ping"}}"#,
        r#"{"id": 1, "trace": [91052], "request": {"type": "metrics"}}"#,
        r#"{"id": 1, "trace": {}, "request": {"type": "ping"}}"#,
    ] {
        assert!(
            Request::parse_line(bad).is_err(),
            "non-integer trace id accepted: {bad}"
        );
    }
    assert!(
        Response::parse_line(
            r#"{"id": 1, "trace": {}, "cached": false, "elapsed_us": 0, "ok": {}}"#
        )
        .is_err(),
        "non-integer response trace id must be rejected"
    );

    // Session snapshots cross daemons during migration, so their decoder
    // faces another daemon's (possibly corrupted) bytes. Mutate the valid
    // specimen member-by-member: typed errors, never panics or lenient
    // accepts.
    use tsn_online::wire::session_snapshot_from_json;
    let snapshot_line = specimens()
        .into_iter()
        .find(|(kind, _)| *kind == "session_snapshot")
        .expect("snapshot specimen")
        .1;
    let snapshot = Json::parse(&snapshot_line).expect("specimen parses");
    assert!(session_snapshot_from_json(&snapshot).is_ok());
    assert!(
        session_snapshot_from_json(&with_member(&snapshot, "session", Json::Int(7))).is_err(),
        "a non-object session must be rejected"
    );
    let session = snapshot.get("session").expect("warm specimen").clone();
    for (member, hostile) in [
        ("phase", Json::Arr(vec![Json::Int(2)])),
        ("activity", Json::Arr(vec![Json::from("hot")])),
        ("clauses", Json::Arr(vec![Json::Arr(vec![Json::Int(-1)])])),
        ("atoms", Json::Arr(vec![Json::Arr(vec![Json::Int(1)])])),
        ("var_inc", Json::from("fast")),
        ("bools", Json::Null),
    ] {
        assert!(
            session_snapshot_from_json(&with_member(
                &snapshot,
                "session",
                with_member(&session, member, hostile)
            ))
            .is_err(),
            "hostile session member {member:?} accepted"
        );
    }
}

#[test]
fn retry_after_codec_round_trips_and_rejects_confusion() {
    // A shed rejection round-trips with its backoff hint intact.
    let shed = tsn_service::protocol::shed_response(
        7,
        Some(3),
        "overloaded: 9 jobs queued at watermark 8".to_string(),
        100,
    );
    let line = shed.to_line();
    assert!(
        line.contains(r#""retry_after_ms":100"#),
        "the hint must be on the wire: {line}"
    );
    let decoded = Response::parse_line(&line).expect("shed response round trips");
    assert_eq!(decoded.retry_after_ms, Some(100));
    assert_eq!(decoded.id, 7);
    assert_eq!(decoded.trace, Some(3));
    assert!(decoded.outcome.is_err());

    // Ordinary responses carry no retry_after_ms member at all — the
    // field must never perturb the byte-identical differentials.
    let plain = Response {
        id: 1,
        trace: None,
        cached: false,
        elapsed_us: 5,
        retry_after_ms: None,
        outcome: Ok(Json::obj([("type", Json::from("pong"))])),
    };
    let plain_line = plain.to_line();
    assert!(
        !plain_line.contains("retry_after_ms"),
        "absent hint must stay off the wire: {plain_line}"
    );
    assert_eq!(
        Response::parse_line(&plain_line)
            .expect("plain response round trips")
            .retry_after_ms,
        None
    );

    // Absent and null decode as None; any non-integer is a typed error.
    assert_eq!(
        Response::parse_line(
            r#"{"id": 1, "cached": false, "elapsed_us": 0, "retry_after_ms": null, "error": "overloaded"}"#
        )
        .expect("null hint is None")
        .retry_after_ms,
        None
    );
    for bad in [
        r#"{"id": 1, "cached": false, "elapsed_us": 0, "retry_after_ms": "soon", "error": "overloaded"}"#,
        r#"{"id": 1, "cached": false, "elapsed_us": 0, "retry_after_ms": 0.5, "error": "overloaded"}"#,
        r#"{"id": 1, "cached": false, "elapsed_us": 0, "retry_after_ms": [100], "error": "overloaded"}"#,
        r#"{"id": 1, "cached": false, "elapsed_us": 0, "retry_after_ms": {}, "error": "overloaded"}"#,
    ] {
        assert!(
            Response::parse_line(bad).is_err(),
            "non-integer retry_after_ms accepted: {bad}"
        );
    }
}

/// A copy of `doc` with one member replaced (or appended).
fn with_member(doc: &Json, key: &str, value: Json) -> Json {
    let Json::Obj(members) = doc else {
        panic!("specimen is not an object");
    };
    let mut members = members.clone();
    match members.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => members.push((key.to_string(), value)),
    }
    Json::Obj(members)
}

#[test]
fn garbled_structured_log_lines_never_panic() {
    // The structured diagnostic log is read back by tools (and by the
    // daemon's own `health` tail), so its line parser faces the same
    // hostility as the wire decoders: truncations and garbled bytes must
    // surface as typed `LogParseError`s, never panics.
    use tsn_telemetry::log::LogEvent;
    let line = log_specimen().to_line();
    let parsed = LogEvent::parse_line(&line).expect("specimen parses");
    assert_eq!(parsed.to_line(), line, "canonical line round-trips");
    // Every char-boundary strict prefix is an incomplete document.
    for end in 0..line.len() {
        if !line.is_char_boundary(end) {
            continue;
        }
        assert!(
            LogEvent::parse_line(&line[..end]).is_err(),
            "strict prefix accepted at byte {end}"
        );
    }
    // Single-byte garbling at every offset: any `Result`, no panic.
    let bytes = line.as_bytes();
    for at in 0..bytes.len() {
        for replacement in [b'"', b'{', b'}', b'[', b'0', b'x', b',', 0xFF] {
            let mut garbled = bytes.to_vec();
            garbled[at] = replacement;
            let garbled = String::from_utf8_lossy(&garbled).into_owned();
            let _ = LogEvent::parse_line(&garbled);
        }
    }
    // Hand-written hostile lines: typed errors, not lenient accepts.
    for bad in [
        "",
        "null",
        "[]",
        "\"a bare string\"",
        r#"{"ts_ns": -1, "level": "info", "target": "t", "msg": "m"}"#,
        r#"{"ts_ns": 0, "level": "shout", "target": "t", "msg": "m"}"#,
        r#"{"ts_ns": 0, "level": "info", "target": 7, "msg": "m"}"#,
        r#"{"ts_ns": 0, "level": "info", "target": "t"}"#,
        r#"{"ts_ns": 0, "level": "info", "target": "t", "msg": "m", "fields": []}"#,
        r#"{"ts_ns": 0, "level": "info", "target": "t", "msg": "m"} trailing"#,
    ] {
        assert!(LogEvent::parse_line(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn every_specimen_round_trips_before_corruption() {
    // Sanity: the corpus is built from valid lines (otherwise the fuzzing
    // above would be vacuous).
    for (kind, line) in specimens() {
        assert!(
            Json::parse(&line).is_ok(),
            "{kind}: specimen is not valid JSON"
        );
    }
}
