//! Differential tests for the partitioned parallel synthesizer
//! (`tsn_scale`) against the monolithic solver and the three-way oracle.
//!
//! * On every small-grid scenario the partitioned solver (forced to split
//!   even tiny problems) must solve whatever the monolithic solver solves,
//!   and its merged schedule must pass the same three-way oracle.
//! * The partitioned result is bit-identical across repeated runs (same
//!   seed ⇒ same schedule; thread-count independence is asserted in
//!   `crates/scale/tests/partitioned.rs`).
//! * The `#[ignore]`-gated flagship solves a 500-stream, 80-switch fat-tree
//!   end-to-end with the oracle — the release-mode `heavy` CI job runs it.

use testkit::{
    build_problem, config_for, scenario_grid, scenario_grid_heavy, three_way_check_scale,
};
use tsn_scale::{ScaleConfig, ScaleSynthesizer, SynthesisStrategy};
use tsn_synthesis::{SynthesisError, Synthesizer};
use tsn_workload::{large_scale_problem, LargeScaleScenario, LargeTopology};

/// A scale configuration matching a grid scenario's monolithic
/// configuration, with partitioning forced on (at most two applications per
/// partition) so even the small scenarios exercise the split/repair path,
/// and the monolithic fallback disabled — the differential must prove the
/// *partitioned* path equivalent, not let a silent fallback answer for it.
fn scale_config_for(spec: &testkit::ScenarioSpec) -> ScaleConfig {
    ScaleConfig {
        synthesis: config_for(spec),
        target_apps_per_partition: 2,
        threads: 2,
        fallback_monolithic: false,
        ..ScaleConfig::default()
    }
}

#[test]
fn partitioned_is_oracle_equivalent_to_monolithic_on_the_grid() {
    let mut both_solved = 0usize;
    let mut neither = 0usize;
    let mut scale_only = 0usize;
    for spec in &scenario_grid() {
        let problem = build_problem(spec).expect("grid scenarios build");
        let config = config_for(spec);
        let mode = config.mode;
        let monolithic = Synthesizer::new(config).synthesize(&problem);
        let scale = ScaleSynthesizer::new(scale_config_for(spec)).synthesize(&problem);
        match (&monolithic, &scale) {
            (Ok(mono), Ok(scale_report)) => {
                three_way_check_scale(&problem, scale_report, mode)
                    .unwrap_or_else(|e| panic!("scenario {spec:?}: {e}"));
                // Stability-aware solves certify every loop in both paths.
                assert_eq!(
                    mono.all_stable(),
                    scale_report.all_stable(),
                    "scenario {spec:?}: stability claims diverge"
                );
                both_solved += 1;
            }
            (Ok(_), Err(e)) => {
                panic!(
                    "scenario {spec:?}: monolithic solved but the partitioned \
                     solver failed: {e}"
                );
            }
            (Err(_), Ok(scale_report)) => {
                // The partitioned explored space can exceed the monolithic
                // staging heuristic; any extra solution must still verify.
                three_way_check_scale(&problem, scale_report, mode)
                    .unwrap_or_else(|e| panic!("scenario {spec:?}: {e}"));
                scale_only += 1;
            }
            (Err(SynthesisError::Unsatisfiable { .. }), Err(_))
            | (Err(SynthesisError::ResourceLimit { .. }), Err(_)) => neither += 1,
            (Err(e), Err(_)) => panic!("scenario {spec:?}: unexpected error {e}"),
        }
    }
    assert!(
        both_solved >= scenario_grid().len() / 2,
        "only {both_solved} scenarios solved by both paths \
         ({neither} by neither, {scale_only} by scale only)"
    );
}

#[test]
fn heuristic_first_is_oracle_equivalent_to_smt_only_on_the_grid() {
    // The differential bar for `SynthesisStrategy::HeuristicFirst`: on the
    // whole grid it must solve whatever the pure-SMT partitioned path
    // solves (greedy placement + SMT repair may never lose feasibility —
    // a failed repair falls back to the full SMT partition solve), and
    // every schedule it produces must pass the same three-way oracle.
    let mut both_solved = 0usize;
    let mut greedy_placed = 0usize;
    for spec in &scenario_grid() {
        let problem = build_problem(spec).expect("grid scenarios build");
        let mode = config_for(spec).mode;
        let smt_only = ScaleSynthesizer::new(scale_config_for(spec)).synthesize(&problem);
        let heuristic = ScaleSynthesizer::new(ScaleConfig {
            strategy: SynthesisStrategy::HeuristicFirst,
            ..scale_config_for(spec)
        })
        .synthesize(&problem);
        match (&smt_only, &heuristic) {
            (_, Ok(report)) => {
                three_way_check_scale(&problem, report, mode)
                    .unwrap_or_else(|e| panic!("scenario {spec:?}: {e}"));
                assert_eq!(report.strategy, SynthesisStrategy::HeuristicFirst);
                if smt_only.is_ok() {
                    both_solved += 1;
                }
                greedy_placed += report.heuristic.placed_apps;
            }
            (Ok(_), Err(e)) => {
                panic!(
                    "scenario {spec:?}: the pure-SMT partitioned path solved \
                     but heuristic-first failed: {e}"
                );
            }
            (Err(_), Err(SynthesisError::Unsatisfiable { .. }))
            | (Err(_), Err(SynthesisError::ResourceLimit { .. })) => {}
            (Err(_), Err(e)) => panic!("scenario {spec:?}: unexpected error {e}"),
        }
    }
    assert!(
        both_solved >= scenario_grid().len() / 2,
        "only {both_solved} scenarios solved by both strategies"
    );
    assert!(
        greedy_placed > 0,
        "the grid must exercise the greedy placement path, not just fallback"
    );
}

#[test]
fn partitioned_solve_is_reproducible_on_a_grid_sample() {
    for spec in scenario_grid().iter().step_by(17) {
        let problem = build_problem(spec).expect("build");
        let run = || match ScaleSynthesizer::new(scale_config_for(spec)).synthesize(&problem) {
            Ok(report) => {
                let times: Vec<(usize, usize, Vec<i64>)> = report
                    .report
                    .schedule
                    .messages
                    .iter()
                    .map(|m| {
                        (
                            m.message.app,
                            m.message.instance,
                            m.link_release.iter().map(|&(_, t)| t.as_nanos()).collect(),
                        )
                    })
                    .collect();
                format!("{times:?}")
            }
            Err(e) => format!("error {e}"),
        };
        assert_eq!(run(), run(), "spec {spec:?} is not reproducible");
    }
}

/// The flagship: a 500-stream, 80-switch fat-tree solved by the partitioned
/// path (no monolithic fallback) with the full three-way oracle. Minutes in
/// release; run by the `heavy` CI job via `cargo test --release -- --ignored`.
#[test]
#[ignore = "release-scale instance; run in the heavy CI job"]
fn five_hundred_streams_solve_end_to_end_with_the_oracle() {
    let scenario = LargeScaleScenario {
        topology: LargeTopology::FatTree,
        switches: 80,
        streams: 500,
        seed: 1,
        fast_stream_percent: 12,
    };
    let problem = large_scale_problem(&scenario).unwrap();
    assert!(problem.topology().switches().len() >= 32);
    assert!(problem.applications().len() >= 500);
    let config = ScaleConfig {
        synthesis: tsn_synthesis::SynthesisConfig {
            timeout_per_stage: Some(std::time::Duration::from_secs(120)),
            ..ScaleConfig::default().synthesis
        },
        ..ScaleConfig::default()
    };
    let report = ScaleSynthesizer::new(config)
        .synthesize(&problem)
        .expect("the 500-stream flagship must be schedulable");
    assert!(
        !report.monolithic_fallback,
        "the partitioned path itself must solve the flagship"
    );
    assert!(report.partitions.len() >= 16);
    let mode = ScaleConfig::default().synthesis.mode;
    three_way_check_scale(&problem, &report, mode).expect("three-way oracle at scale");
}

/// Heavy grid rows under the three-way oracle (release-mode CI only).
#[test]
#[ignore = "minutes in debug; run in the heavy CI job"]
fn heavy_grid_scenarios_pass_the_oracle() {
    for spec in &scenario_grid_heavy() {
        let problem = build_problem(spec).expect("heavy scenarios build");
        let config = config_for(spec);
        let mode = config.mode;
        match ScaleSynthesizer::new(ScaleConfig {
            synthesis: config,
            target_apps_per_partition: 4,
            ..ScaleConfig::default()
        })
        .synthesize(&problem)
        {
            Ok(report) => {
                three_way_check_scale(&problem, &report, mode)
                    .unwrap_or_else(|e| panic!("heavy scenario {spec:?}: {e}"));
            }
            Err(SynthesisError::Unsatisfiable { .. })
            | Err(SynthesisError::ResourceLimit { .. }) => {
                // Heavy rows may be infeasible under their stability draws;
                // what matters is that nothing unsound is produced.
            }
            Err(e) => panic!("heavy scenario {spec:?}: unexpected error {e}"),
        }
    }
}
