//! The cross-crate differential harness.
//!
//! Two independent oracles over the seeded deterministic corpus:
//!
//! * the CDCL(T) solver vs. the brute-force difference-logic reference, and
//! * the three-way schedule oracle (analytic metrics vs. independent
//!   verifier vs. discrete-event simulator) over the full scenario grid.

use rand::rngs::StdRng;
use rand::SeedableRng;
use testkit::{
    brute_force_sat, build_problem, config_for, random_instance, scenario_grid, solve_with_smt,
    three_way_check,
};
use tsn_synthesis::{SynthesisError, Synthesizer};

#[test]
fn smt_solver_agrees_with_brute_force_reference() {
    let mut rng = StdRng::seed_from_u64(0xD1FF ^ 0xC0FFEE);
    let mut sat = 0;
    let mut unsat = 0;
    for round in 0..300 {
        let inst = random_instance(&mut rng);
        let expected = brute_force_sat(&inst);
        let actual = solve_with_smt(&inst);
        assert_eq!(
            actual, expected,
            "solver disagrees with brute force on round {round}: {inst:?}"
        );
        if expected {
            sat += 1;
        } else {
            unsat += 1;
        }
    }
    // The generator must exercise both outcomes to be meaningful.
    assert!(sat > 20, "too few satisfiable instances: {sat}");
    assert!(unsat > 20, "too few unsatisfiable instances: {unsat}");
}

#[test]
fn three_way_oracle_agrees_on_the_scenario_grid() {
    let grid = scenario_grid();
    assert!(grid.len() >= 50, "corpus must span at least 50 scenarios");
    let mut solved = 0;
    let mut unsolved = 0;
    for spec in &grid {
        let problem = build_problem(spec).unwrap_or_else(|e| {
            panic!("scenario {spec:?} failed to build: {e}");
        });
        problem
            .validate()
            .unwrap_or_else(|e| panic!("scenario {spec:?} is ill-formed: {e}"));
        let config = config_for(spec);
        let mode = config.mode;
        match Synthesizer::new(config).synthesize(&problem) {
            Ok(report) => {
                if let Err(disagreement) = three_way_check(&problem, &report, mode) {
                    panic!("scenario {spec:?}: {disagreement}");
                }
                solved += 1;
            }
            Err(SynthesisError::Unsatisfiable { .. })
            | Err(SynthesisError::ResourceLimit { .. }) => {
                unsolved += 1;
            }
            Err(e) => panic!("scenario {spec:?}: unexpected synthesis error: {e}"),
        }
    }
    // The grid must be dominated by solvable scenarios for the oracle to
    // exercise the agreement path broadly; unsolvable ones are tolerated but
    // must stay the minority.
    assert!(
        solved >= grid.len() / 2,
        "only {solved}/{} scenarios solved ({unsolved} unsolved) — \
         the corpus no longer exercises the oracle",
        grid.len()
    );
}

#[test]
fn grid_synthesis_is_deterministic_for_a_sample() {
    // Full double-synthesis of the grid would double the suite's runtime;
    // a spread sample across all four topology shapes is enough to catch
    // nondeterminism in the solver or generator.
    for spec in scenario_grid().iter().step_by(13) {
        let problem_a = build_problem(spec).expect("build");
        let problem_b = build_problem(spec).expect("build");
        let run = |problem| match Synthesizer::new(config_for(spec)).synthesize(problem) {
            Ok(report) => {
                let metrics: Vec<(i64, i64)> = report
                    .app_metrics
                    .iter()
                    .map(|m| (m.latency.as_nanos(), m.jitter.as_nanos()))
                    .collect();
                format!("solved {metrics:?}")
            }
            Err(e) => format!("error {e}"),
        };
        assert_eq!(run(&problem_a), run(&problem_b), "spec {spec:?}");
    }
}
