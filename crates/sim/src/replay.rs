//! Replay of an evolving schedule across reconfiguration epochs.
//!
//! The online engine (`tsn_online`) mutates the running schedule as network
//! events arrive; each committed state is one *epoch*. This module replays
//! every epoch on the discrete-event simulator and aggregates the results,
//! giving an executable end-to-end validation of a whole reconfiguration
//! history: every epoch must simulate cleanly and observe exactly the
//! metrics its schedule promises.

use tsn_synthesis::{Schedule, SynthesisProblem};

use crate::{NetworkSimulator, SimConfig, SimReport};

/// The simulation outcome of one reconfiguration epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Index of the epoch in the replayed history.
    pub epoch: usize,
    /// Number of applications live in this epoch.
    pub applications: usize,
    /// The simulator's report for this epoch.
    pub sim: SimReport,
}

/// The aggregated outcome of replaying a reconfiguration history.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// One report per replayed epoch (empty epochs are skipped).
    pub epochs: Vec<EpochReport>,
}

impl ReplayReport {
    /// Returns `true` if every epoch simulated without violations.
    pub fn is_clean(&self) -> bool {
        self.epochs.iter().all(|e| e.sim.is_clean())
    }

    /// Total frames delivered across all epochs and applications.
    pub fn total_delivered(&self) -> usize {
        self.epochs
            .iter()
            .map(|e| e.sim.flows.iter().map(|f| f.delivered).sum::<usize>())
            .sum()
    }
}

/// Replays a sequence of `(problem, schedule)` epochs on the simulator.
///
/// Epochs with no applications (e.g. after every loop was removed) are
/// skipped — there is nothing to simulate. Each remaining epoch is simulated
/// independently under `config`; reconfiguration is assumed to happen on
/// hyper-period boundaries, which is exactly the guarantee the online engine
/// provides by freezing committed release times.
pub fn replay_epochs<'a>(
    epochs: impl IntoIterator<Item = (&'a SynthesisProblem, &'a Schedule)>,
    config: SimConfig,
) -> ReplayReport {
    let mut reports = Vec::new();
    for (epoch, (problem, schedule)) in epochs.into_iter().enumerate() {
        if problem.applications().is_empty() || schedule.messages.is_empty() {
            continue;
        }
        let sim = NetworkSimulator::new(problem, schedule).run(config);
        reports.push(EpochReport {
            epoch,
            applications: problem.applications().len(),
            sim,
        });
    }
    ReplayReport { epochs: reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_control::PiecewiseLinearBound;
    use tsn_net::{builders, LinkSpec, Time};
    use tsn_synthesis::{SynthesisConfig, Synthesizer};

    fn solved(apps: usize) -> (SynthesisProblem, Schedule) {
        let net = builders::figure1_example(LinkSpec::fast_ethernet());
        let mut p = SynthesisProblem::new(net.topology, Time::from_micros(5));
        for i in 0..apps {
            p.add_application(
                format!("app{i}"),
                net.sensors[i],
                net.controllers[i],
                Time::from_millis(10),
                1500,
                PiecewiseLinearBound::single_segment(2.0, 0.018),
            )
            .unwrap();
        }
        let report = Synthesizer::new(SynthesisConfig::default())
            .synthesize(&p)
            .unwrap();
        (p, report.schedule)
    }

    #[test]
    fn replaying_growing_epochs_is_clean() {
        let (p1, s1) = solved(1);
        let (p2, s2) = solved(2);
        let (p3, s3) = solved(3);
        let report = replay_epochs([(&p1, &s1), (&p2, &s2), (&p3, &s3)], SimConfig::default());
        assert!(report.is_clean());
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.epochs[2].applications, 3);
        assert!(report.total_delivered() >= 6);
    }

    #[test]
    fn empty_epochs_are_skipped() {
        let (p1, s1) = solved(1);
        let empty_problem = SynthesisProblem::new(
            builders::figure1_example(LinkSpec::fast_ethernet()).topology,
            Time::from_micros(5),
        );
        let empty_schedule = Schedule {
            hyperperiod: Time::ZERO,
            messages: Vec::new(),
        };
        let report = replay_epochs(
            [(&p1, &s1), (&empty_problem, &empty_schedule)],
            SimConfig::default(),
        );
        assert_eq!(report.epochs.len(), 1);
        assert!(report.is_clean());
    }

    #[test]
    fn corrupted_epoch_is_flagged() {
        let (p1, s1) = solved(1);
        let mut broken = s1.clone();
        if broken.messages[0].link_release.len() > 1 {
            broken.messages[0].link_release[1].1 = broken.messages[0].link_release[0].1;
        }
        let report = replay_epochs([(&p1, &s1), (&p1, &broken)], SimConfig::default());
        assert!(!report.is_clean());
        assert!(report.epochs[0].sim.is_clean());
        assert!(!report.epochs[1].sim.is_clean());
    }
}
