//! Control-loop co-simulation: the plant dynamics are simulated under the
//! per-instance network delays of a synthesized schedule.

use serde::{Deserialize, Serialize};
use tsn_control::linalg::Matrix;
use tsn_control::{
    augmented_system, required_stored_inputs, ControlError, ControllerWeights, Plant,
    SampledController,
};
use tsn_net::Time;

/// The result of a control co-simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoSimReport {
    /// Euclidean norm of the plant state after every sampling period.
    pub state_norms: Vec<f64>,
    /// Accumulated quadratic state cost `sum_k |x_k|^2`.
    pub quadratic_cost: f64,
    /// Whether the trajectory contracted (final norm well below the initial
    /// norm and never diverging).
    pub converged: bool,
}

/// Simulates one control application's closed loop under a repeating pattern
/// of sensor-to-actuator delays (one delay per sampling period, e.g. the
/// end-to-end delays of the application's messages in one hyper-period).
///
/// # Example
///
/// ```
/// use tsn_control::Plant;
/// use tsn_net::Time;
/// use tsn_sim::ControlCoSimulation;
///
/// # fn main() -> Result<(), tsn_control::ControlError> {
/// let cosim = ControlCoSimulation::new(Plant::dc_servo(), Time::from_millis(6))?;
/// // Small constant delay: the loop converges.
/// let ok = cosim.run(&[Time::from_micros(500)], 300);
/// assert!(ok.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ControlCoSimulation {
    plant: Plant,
    period: Time,
    controller: SampledController,
    stored_inputs: usize,
}

impl ControlCoSimulation {
    /// Designs the controller (zero-delay LQR, matching the synthesis-side
    /// analysis) and prepares the co-simulation.
    ///
    /// # Errors
    ///
    /// Propagates controller-design failures.
    pub fn new(plant: Plant, period: Time) -> Result<Self, ControlError> {
        let h = period.as_secs_f64();
        // Allow delays of up to three periods, as in the analysis defaults.
        let stored_inputs = required_stored_inputs(h, 3.0 * h);
        let controller =
            SampledController::design(&plant, h, 0.0, stored_inputs, ControllerWeights::default())?;
        Ok(ControlCoSimulation {
            plant,
            period,
            controller,
            stored_inputs,
        })
    }

    /// The sampling period of the simulated loop.
    pub fn period(&self) -> Time {
        self.period
    }

    /// Runs the closed loop for `steps` sampling periods. The k-th period
    /// uses the delay `delays[k % delays.len()]` (so passing the end-to-end
    /// delays of one hyper-period reproduces the periodic network schedule);
    /// an empty slice means zero delay everywhere.
    pub fn run(&self, delays: &[Time], steps: usize) -> CoSimReport {
        let h = self.period.as_secs_f64();
        let n = self.plant.order();
        let dim = n + self.stored_inputs;
        // Initial state: unit deviation in every plant state.
        let mut z = Matrix::zeros(dim, 1);
        for i in 0..n {
            z[(i, 0)] = 1.0;
        }
        let mut state_norms = Vec::with_capacity(steps);
        let mut quadratic_cost = 0.0;
        let mut diverged = false;
        for k in 0..steps {
            let delay = if delays.is_empty() {
                Time::ZERO
            } else {
                delays[k % delays.len()]
            };
            let tau = delay
                .as_secs_f64()
                .clamp(0.0, self.stored_inputs as f64 * h);
            let closed = augmented_system(&self.plant, h, tau, self.stored_inputs)
                .and_then(|sys| self.controller.closed_loop(&sys));
            match closed {
                Ok(acl) => z = &acl * &z,
                Err(_) => {
                    diverged = true;
                    break;
                }
            }
            let norm: f64 = (0..n).map(|i| z[(i, 0)] * z[(i, 0)]).sum::<f64>().sqrt();
            state_norms.push(norm);
            quadratic_cost += norm * norm;
            if !norm.is_finite() || norm > 1e9 {
                diverged = true;
                break;
            }
        }
        let converged = !diverged
            && state_norms
                .last()
                .map(|&last| last < 1e-2 * state_norms.first().copied().unwrap_or(1.0).max(1.0))
                .unwrap_or(false);
        CoSimReport {
            state_norms,
            quadratic_cost,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_loop_converges() {
        let cosim = ControlCoSimulation::new(Plant::dc_servo(), Time::from_millis(6)).unwrap();
        let report = cosim.run(&[], 400);
        assert!(report.converged);
        assert!(report.quadratic_cost.is_finite());
        assert!(report.state_norms.last().unwrap() < &1e-2);
    }

    #[test]
    fn small_jitter_converges_and_huge_delay_diverges() {
        let cosim = ControlCoSimulation::new(Plant::dc_servo(), Time::from_millis(6)).unwrap();
        let small = cosim.run(
            &[
                Time::from_micros(300),
                Time::from_micros(800),
                Time::from_micros(500),
            ],
            400,
        );
        assert!(small.converged);
        // A delay pattern far beyond the stability region (2.5 periods of
        // latency with huge jitter) must not be reported as converged.
        let huge = cosim.run(&[Time::from_millis(1), Time::from_millis(15)], 400);
        assert!(!huge.converged || huge.quadratic_cost > small.quadratic_cost);
    }

    #[test]
    fn unstable_plant_with_good_network_still_converges() {
        let cosim =
            ControlCoSimulation::new(Plant::inverted_pendulum(), Time::from_millis(10)).unwrap();
        let report = cosim.run(&[Time::from_micros(200)], 500);
        assert!(report.converged);
    }
}
