//! Store-and-forward discrete-event simulation of a synthesized schedule.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};
use tsn_net::{LinkId, Time};
use tsn_synthesis::{Schedule, SynthesisProblem};

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of hyper-periods to simulate.
    pub hyperperiods: usize,
    /// Fraction (0..1) of each link's idle time filled with lower-priority
    /// best-effort frames, to demonstrate that scheduled traffic is isolated
    /// from it.
    pub background_load: f64,
    /// Size of the injected best-effort frames, in bytes.
    pub background_frame_bytes: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            hyperperiods: 2,
            background_load: 0.0,
            background_frame_bytes: 1500,
        }
    }
}

/// Observed metrics of one application's flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulatedFlowMetrics {
    /// Number of frames delivered to the controller.
    pub delivered: usize,
    /// Minimum observed end-to-end delay (the latency `L_i`).
    pub latency: Time,
    /// Observed delay variation (the jitter `J_i`).
    pub jitter: Time,
    /// Maximum observed end-to-end delay.
    pub max_end_to_end: Time,
}

/// A protocol violation detected during simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// A gate opened before the frame it should transmit had fully arrived
    /// and been processed at the switch.
    GateBeforeArrival {
        /// Application index.
        app: usize,
        /// Message instance within the hyper-period.
        instance: usize,
        /// The egress link whose gate misfired.
        link: LinkId,
    },
    /// Two scheduled frames overlapped on the same directed link.
    LinkOverlap {
        /// The link on which the overlap happened.
        link: LinkId,
    },
}

/// The result of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-application observed flow metrics.
    pub flows: Vec<SimulatedFlowMetrics>,
    /// Any violations detected (empty for a correct schedule).
    pub violations: Vec<Violation>,
    /// Number of best-effort frames injected.
    pub background_frames: usize,
    /// Number of best-effort frames that completed transmission.
    pub background_delivered: usize,
}

impl SimReport {
    /// Returns `true` if the simulation observed no protocol violation.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A store-and-forward simulator of the scheduled (time-triggered) traffic
/// class plus optional background best-effort traffic.
///
/// # Example
///
/// ```
/// use tsn_control::PiecewiseLinearBound;
/// use tsn_net::{builders, LinkSpec, Time};
/// use tsn_sim::{NetworkSimulator, SimConfig};
/// use tsn_synthesis::{SynthesisConfig, SynthesisProblem, Synthesizer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = builders::figure1_example(LinkSpec::fast_ethernet());
/// let mut problem = SynthesisProblem::new(net.topology, Time::from_micros(5));
/// problem.add_application(
///     "app0",
///     net.sensors[0],
///     net.controllers[0],
///     Time::from_millis(10),
///     1500,
///     PiecewiseLinearBound::single_segment(2.0, 0.015),
/// )?;
/// let report = Synthesizer::new(SynthesisConfig::default()).synthesize(&problem)?;
///
/// let sim = NetworkSimulator::new(&problem, &report.schedule);
/// let result = sim.run(SimConfig::default());
/// assert!(result.is_clean());
/// assert_eq!(result.flows[0].delivered, 2); // two hyper-periods simulated
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetworkSimulator<'a> {
    problem: &'a SynthesisProblem,
    schedule: &'a Schedule,
}

/// One scheduled transmission: a frame leaves `link` at `start` and occupies
/// it until `end`; `hop` is its position along the message's route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Transmission {
    start: Time,
    end: Time,
    link: LinkId,
    app: usize,
    instance: usize,
    hop: usize,
}

impl<'a> NetworkSimulator<'a> {
    /// Creates a simulator for the given problem and schedule.
    pub fn new(problem: &'a SynthesisProblem, schedule: &'a Schedule) -> Self {
        NetworkSimulator { problem, schedule }
    }

    /// Runs the simulation.
    pub fn run(&self, config: SimConfig) -> SimReport {
        let hyper = self.schedule.hyperperiod;
        let repetitions = config.hyperperiods.max(1);
        let mut violations = Vec::new();

        // Expand the periodic schedule into concrete transmissions.
        let mut transmissions: Vec<Transmission> = Vec::new();
        for rep in 0..repetitions {
            let offset = hyper * rep as i64;
            for m in &self.schedule.messages {
                let app = &self.problem.applications()[m.message.app];
                for (hop, &(link, release)) in m.link_release.iter().enumerate() {
                    let ld = self
                        .problem
                        .topology()
                        .link(link)
                        .transmission_delay(app.frame_bytes);
                    let start = release + offset;
                    transmissions.push(Transmission {
                        start,
                        end: start + ld,
                        link,
                        app: m.message.app,
                        instance: m.message.instance,
                        hop,
                    });
                }
            }
        }

        // Event-driven pass: process transmissions in start order, tracking
        // per-link occupancy and per-frame arrival at each switch.
        let mut heap: BinaryHeap<Reverse<Transmission>> =
            transmissions.into_iter().map(Reverse).collect();
        // (app, instance, repetition-resolved hop) -> time the frame is ready
        // at the switch feeding that hop.
        let mut ready_at: HashMap<(usize, usize, Time, usize), Time> = HashMap::new();
        let mut link_busy_until: HashMap<LinkId, Time> = HashMap::new();
        let mut arrivals: HashMap<usize, Vec<Time>> = HashMap::new();
        let sd = self.problem.forwarding_delay();

        while let Some(Reverse(t)) = heap.pop() {
            let app = &self.problem.applications()[t.app];
            // Release period of this concrete frame (identifies the instance
            // across repetitions).
            let release = self
                .schedule
                .messages
                .iter()
                .find(|m| m.message.app == t.app && m.message.instance == t.instance);
            let Some(msg) = release else { continue };
            let base_release = msg.message.release;
            let rep_offset = t.start - msg.link_release[t.hop].1;
            let key = (t.app, t.instance, rep_offset, t.hop);

            // Store-and-forward: the frame must be ready at the transmitting
            // node when its gate opens.
            if t.hop > 0 {
                let ready = ready_at
                    .get(&(t.app, t.instance, rep_offset, t.hop - 1))
                    .copied()
                    .unwrap_or(Time::MAX);
                if t.start < ready {
                    violations.push(Violation::GateBeforeArrival {
                        app: t.app,
                        instance: t.instance,
                        link: t.link,
                    });
                }
            }
            // Link occupancy: scheduled frames must never overlap.
            if let Some(&busy_until) = link_busy_until.get(&t.link) {
                if t.start < busy_until {
                    violations.push(Violation::LinkOverlap { link: t.link });
                }
            }
            link_busy_until.insert(t.link, t.end);
            // After full reception plus the forwarding delay the frame is
            // ready at the next node.
            ready_at.insert(key, t.end + sd);

            // Final hop: record controller arrival.
            if t.hop == msg.link_release.len() - 1 {
                let e2e = t.end - (base_release + rep_offset);
                arrivals.entry(t.app).or_default().push(e2e);
                debug_assert!(e2e <= app.period, "simulated frame missed its deadline");
            }
        }

        // Background best-effort traffic: fill idle gaps of every link with
        // lower-priority frames that only start when they fit entirely before
        // the next scheduled transmission (the 802.1Qbv guard-band policy),
        // so they can never delay the time-triggered frames.
        let (background_frames, background_delivered) =
            self.inject_background(&config, repetitions);

        let flows = (0..self.problem.applications().len())
            .map(|app| {
                let observed = arrivals.get(&app).cloned().unwrap_or_default();
                if observed.is_empty() {
                    SimulatedFlowMetrics {
                        delivered: 0,
                        latency: Time::ZERO,
                        jitter: Time::ZERO,
                        max_end_to_end: Time::ZERO,
                    }
                } else {
                    let min = observed.iter().copied().min().expect("non-empty");
                    let max = observed.iter().copied().max().expect("non-empty");
                    SimulatedFlowMetrics {
                        delivered: observed.len(),
                        latency: min,
                        jitter: max - min,
                        max_end_to_end: max,
                    }
                }
            })
            .collect();

        SimReport {
            flows,
            violations,
            background_frames,
            background_delivered,
        }
    }

    /// Injects best-effort frames into the idle time of every link used by
    /// the schedule, honouring the guard band before every scheduled
    /// transmission. Returns (injected, delivered).
    fn inject_background(&self, config: &SimConfig, repetitions: usize) -> (usize, usize) {
        if config.background_load <= 0.0 {
            return (0, 0);
        }
        let hyper = self.schedule.hyperperiod;
        let horizon = hyper * repetitions as i64;
        // Collect, per link, the busy windows of the scheduled traffic.
        let mut busy: HashMap<LinkId, Vec<(Time, Time)>> = HashMap::new();
        for rep in 0..repetitions {
            let offset = hyper * rep as i64;
            for m in &self.schedule.messages {
                let app = &self.problem.applications()[m.message.app];
                for &(link, release) in &m.link_release {
                    let ld = self
                        .problem
                        .topology()
                        .link(link)
                        .transmission_delay(app.frame_bytes);
                    busy.entry(link)
                        .or_default()
                        .push((release + offset, release + offset + ld));
                }
            }
        }
        let mut injected = 0usize;
        let mut delivered = 0usize;
        for windows in busy.values_mut() {
            windows.sort();
            let link = self
                .problem
                .topology()
                .links()
                .next()
                .map(|l| l.spec())
                .unwrap_or_default();
            let be_ld = link.transmission_delay(config.background_frame_bytes);
            // Walk the idle gaps and fill a `background_load` fraction.
            let mut cursor = Time::ZERO;
            let mut window_idx = 0usize;
            while cursor < horizon {
                let next_busy = windows.get(window_idx).copied();
                let gap_end = next_busy.map(|(s, _)| s).unwrap_or(horizon);
                // Fit as many BE frames as the load fraction allows in this gap.
                let gap = gap_end - cursor;
                if gap >= be_ld {
                    let frames_fitting = (gap / be_ld) as usize;
                    let frames =
                        ((frames_fitting as f64) * config.background_load).floor() as usize;
                    injected += frames_fitting;
                    delivered += frames.min(frames_fitting);
                }
                match next_busy {
                    Some((_, busy_end)) => {
                        cursor = busy_end;
                        window_idx += 1;
                    }
                    None => break,
                }
            }
        }
        (injected, delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_control::PiecewiseLinearBound;
    use tsn_net::{builders, LinkSpec};
    use tsn_synthesis::{SynthesisConfig, Synthesizer};

    fn solved(apps: usize) -> (SynthesisProblem, Schedule) {
        let net = builders::figure1_example(LinkSpec::fast_ethernet());
        let mut p = SynthesisProblem::new(net.topology, Time::from_micros(5));
        for i in 0..apps {
            p.add_application(
                format!("app{i}"),
                net.sensors[i % 3],
                net.controllers[i % 3],
                Time::from_millis(10 * (1 + (i as i64 % 2))),
                1500,
                PiecewiseLinearBound::single_segment(2.0, 0.018),
            )
            .unwrap();
        }
        let report = Synthesizer::new(SynthesisConfig::default())
            .synthesize(&p)
            .unwrap();
        (p, report.schedule)
    }

    #[test]
    fn simulated_metrics_match_schedule_metrics() {
        let (p, s) = solved(3);
        let sim = NetworkSimulator::new(&p, &s);
        let result = sim.run(SimConfig::default());
        assert!(result.is_clean(), "violations: {:?}", result.violations);
        let analytic = s.app_metrics(p.applications().len());
        for (flow, expected) in result.flows.iter().zip(analytic.iter()) {
            assert!(flow.delivered > 0);
            assert_eq!(flow.latency, expected.latency);
            assert_eq!(flow.jitter, expected.jitter);
            assert_eq!(flow.max_end_to_end, expected.max_end_to_end);
        }
    }

    #[test]
    fn corrupted_schedule_is_flagged() {
        let (p, mut s) = solved(1);
        // Open the second gate far too early: the frame has not arrived yet.
        if s.messages[0].link_release.len() > 1 {
            s.messages[0].link_release[1].1 = s.messages[0].link_release[0].1;
            let sim = NetworkSimulator::new(&p, &s);
            let result = sim.run(SimConfig::default());
            assert!(!result.is_clean());
            assert!(result
                .violations
                .iter()
                .any(|v| matches!(v, Violation::GateBeforeArrival { .. })));
        }
    }

    #[test]
    fn overlapping_frames_are_flagged() {
        let (p, mut s) = solved(2);
        // Force message 1 to copy message 0's exact transmissions.
        let clone = s.messages[0].clone();
        let target_app = s.messages[1].message.app;
        let target_instance = s.messages[1].message.instance;
        s.messages[1].route = clone.route.clone();
        s.messages[1].link_release = clone.link_release.clone();
        s.messages[1].end_to_end = clone.end_to_end;
        s.messages[1].message.release = clone.message.release;
        let _ = (target_app, target_instance);
        let sim = NetworkSimulator::new(&p, &s);
        let result = sim.run(SimConfig::default());
        assert!(result
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LinkOverlap { .. })));
    }

    #[test]
    fn background_traffic_does_not_disturb_scheduled_flows() {
        let (p, s) = solved(2);
        let sim = NetworkSimulator::new(&p, &s);
        let quiet = sim.run(SimConfig::default());
        let loaded = sim.run(SimConfig {
            background_load: 0.8,
            ..SimConfig::default()
        });
        assert!(loaded.background_frames > 0);
        assert!(loaded.is_clean());
        for (a, b) in quiet.flows.iter().zip(loaded.flows.iter()) {
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.jitter, b.jitter);
        }
    }

    #[test]
    fn multiple_hyperperiods_scale_delivery_counts() {
        let (p, s) = solved(1);
        let sim = NetworkSimulator::new(&p, &s);
        let one = sim.run(SimConfig {
            hyperperiods: 1,
            ..SimConfig::default()
        });
        let four = sim.run(SimConfig {
            hyperperiods: 4,
            ..SimConfig::default()
        });
        assert_eq!(four.flows[0].delivered, 4 * one.flows[0].delivered);
    }
}
