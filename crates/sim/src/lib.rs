//! Discrete-event simulation of 802.1Qbv TSN networks executing a
//! synthesized schedule, plus control-loop co-simulation.
//!
//! The synthesizer guarantees stability analytically; this crate provides the
//! complementary *executable* validation:
//!
//! * [`NetworkSimulator`] replays a [`Schedule`] on a store-and-forward model
//!   of the switches (egress queues with timed gates, strict priority over
//!   best-effort traffic), measures the end-to-end delay of every frame and
//!   reports any protocol violation (a gate opening before its frame arrived,
//!   or two frames overlapping on a link);
//! * [`ControlCoSimulation`] closes the loop: it simulates the discrete-time
//!   plant/controller dynamics under the per-instance delays produced by the
//!   network and reports whether the state trajectory is contracting;
//! * [`replay_epochs`] replays a whole *reconfiguration history* (the
//!   evolving schedule maintained by the online admission engine) epoch by
//!   epoch, validating every committed state executably.
//!
//! [`Schedule`]: tsn_synthesis::Schedule

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cosim;
mod netsim;
mod replay;

pub use cosim::{CoSimReport, ControlCoSimulation};
pub use netsim::{NetworkSimulator, SimConfig, SimReport, SimulatedFlowMetrics, Violation};
pub use replay::{replay_epochs, EpochReport, ReplayReport};
