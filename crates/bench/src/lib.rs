//! Shared harness utilities for the figure/table regeneration binaries and
//! the Criterion benchmarks.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper.
//! They default to a reduced, shape-preserving sweep so the whole suite runs
//! in minutes; pass `--full` to run the paper-scale sweep.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::Duration;

use tsn_net::Time;
use tsn_synthesis::{
    ConstraintMode, RouteStrategy, SynthesisConfig, SynthesisError, SynthesisProblem,
    SynthesisReport, Synthesizer,
};

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Run the full paper-scale sweep instead of the reduced one.
    pub full: bool,
    /// Per-stage solver timeout.
    pub stage_timeout: Duration,
}

impl HarnessOptions {
    /// Parses options from the process arguments (`--full`,
    /// `--stage-timeout-secs N`).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let full = args.iter().any(|a| a == "--full");
        let stage_timeout = args
            .iter()
            .position(|a| a == "--stage-timeout-secs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_secs)
            .unwrap_or_else(|| Duration::from_secs(if full { 300 } else { 30 }));
        HarnessOptions {
            full,
            stage_timeout,
        }
    }
}

/// The outcome of one synthesis attempt in a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Number of messages of the instance.
    pub messages: usize,
    /// Synthesis wall-clock time in seconds (time to failure if unsolved).
    pub synthesis_seconds: f64,
    /// Whether a solution satisfying all constraints was found.
    pub solved: bool,
    /// The report, when solved.
    pub report: Option<SynthesisReport>,
}

/// Builds the synthesis configuration used by the scalability sweeps.
pub fn sweep_config(
    routes: usize,
    stages: usize,
    stage_timeout: Duration,
    stability: bool,
) -> SynthesisConfig {
    SynthesisConfig {
        route_strategy: RouteStrategy::KShortest(routes),
        stages,
        mode: if stability {
            ConstraintMode::StabilityAware {
                granularity: Time::from_millis(1),
            }
        } else {
            ConstraintMode::DeadlineOnly
        },
        max_conflicts_per_stage: None,
        timeout_per_stage: Some(stage_timeout),
        verify: true,
    }
}

/// Runs one synthesis and classifies the outcome for a sweep.
pub fn run_point(problem: &SynthesisProblem, config: SynthesisConfig) -> SweepPoint {
    let messages = problem.message_count();
    let start = std::time::Instant::now();
    match Synthesizer::new(config).synthesize(problem) {
        Ok(report) => SweepPoint {
            messages,
            synthesis_seconds: report.total_time.as_secs_f64(),
            solved: true,
            report: Some(report),
        },
        Err(SynthesisError::Unsatisfiable { .. }) | Err(SynthesisError::ResourceLimit { .. }) => {
            SweepPoint {
                messages,
                synthesis_seconds: start.elapsed().as_secs_f64(),
                solved: false,
                report: None,
            }
        }
        Err(e) => panic!("unexpected synthesis error in sweep: {e}"),
    }
}

/// Prints a markdown table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats seconds with two decimals.
pub fn seconds(s: f64) -> String {
    format!("{s:.2}")
}

/// Formats a [`Time`] as milliseconds with two decimals.
pub fn millis(t: Time) -> String {
    format!("{:.2}", t.as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_config_maps_modes() {
        let stable = sweep_config(3, 5, Duration::from_secs(1), true);
        assert!(matches!(stable.mode, ConstraintMode::StabilityAware { .. }));
        assert_eq!(stable.stages, 5);
        assert_eq!(stable.route_strategy, RouteStrategy::KShortest(3));
        let deadline = sweep_config(3, 5, Duration::from_secs(1), false);
        assert!(matches!(deadline.mode, ConstraintMode::DeadlineOnly));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(seconds(1.239), "1.24");
        assert_eq!(millis(Time::from_micros(1500)), "1.50");
    }
}
