//! Large-scale synthesis: partitioned parallel solve time vs. stream count,
//! against the monolithic solver.
//!
//! For each stream count the same generated instance (fat-tree fabric,
//! mixed gigabit/fast links) is solved three times:
//!
//! * **heuristic-first** — `tsn_scale`'s greedy first-fit placement with SMT
//!   repair only for the stragglers (`SynthesisStrategy::HeuristicFirst`);
//! * **partitioned** — the contention-partitioned parallel SMT solver with
//!   conflict repair (fallback disabled, so the numbers are honest);
//! * **monolithic** — the paper-faithful `tsn_synthesis` path under a
//!   wall-clock budget; on the larger instances it is expected to time out,
//!   which is recorded as `solved = false` with the budget as its time.
//!
//! Output: a human-readable table plus a JSON document (written to `--out`,
//! default `fig_scale.json`, and echoed to stdout prefixed `JSON:`) with one
//! point per instance — solve times, speedups, partition/repair statistics,
//! aggregated solver counters and stability counts. `--smoke` runs the
//! single 500-stream flagship instance (the heavy CI job uploads its JSON as
//! a build artifact); `--full` sweeps to 2000 streams.
//!
//! `--bench-json PATH` additionally *appends* one JSON line per 500-stream
//! point to `PATH` — the workspace's perf trajectory (`BENCH_scale.json`):
//! every perf PR appends one line, so regressions are visible across the
//! whole history. The schema is the flat object written by
//! [`Point::bench_line`]; since the telemetry PR it includes the
//! per-partition `heuristic_p95_us`/`repair_p95_us` phase percentiles from
//! the `tsn_telemetry` histograms, scoped to **this run** via
//! `Histogram::delta_since` snapshots (the registry is process-cumulative,
//! and the sweep solves every instance three times in one process).
//!
//! `--trace-out PATH` turns the flight recorder on and writes every span of
//! the run (partition solves, heuristic placement, repair rounds, SMT
//! phases) as chrome-trace JSON to `PATH`.

use std::time::{Duration, Instant};

use tsn_bench::{print_table, seconds};
use tsn_net::json::Json;
use tsn_scale::{ScaleConfig, ScaleReport, ScaleSynthesizer, SynthesisStrategy};
use tsn_synthesis::{SynthesisError, Synthesizer};
use tsn_workload::{large_scale_problem, LargeScaleScenario, LargeTopology};

/// Solver counters aggregated over every stage of one synthesis run.
#[derive(Default)]
struct SolverTotals {
    decisions: u64,
    conflicts: u64,
    propagations: u64,
    theory_checks: u64,
    restarts: u64,
    theory_scratch_reuses: u64,
    deleted_clauses: u64,
    peak_live_clauses: u64,
}

impl SolverTotals {
    fn from_report(report: &ScaleReport) -> Self {
        let mut totals = SolverTotals::default();
        for stage in &report.report.stages {
            totals.decisions += stage.decisions;
            totals.conflicts += stage.conflicts;
            totals.propagations += stage.propagations;
            totals.theory_checks += stage.theory_checks;
            totals.restarts += stage.restarts;
            totals.theory_scratch_reuses += stage.theory_scratch_reuses;
            totals.deleted_clauses += stage.deleted_clauses;
            totals.peak_live_clauses = totals.peak_live_clauses.max(stage.peak_live_clauses);
        }
        totals
    }
}

/// One measured sweep point.
struct Point {
    streams: usize,
    switches: usize,
    messages: usize,
    heuristic_seconds: f64,
    heuristic_solved: bool,
    heuristic_placed: usize,
    heuristic_repaired: usize,
    heuristic_fallbacks: usize,
    heuristic_stable: usize,
    /// p95 of per-partition heuristic placement time: the delta of the
    /// process-wide `scale_heuristic_seconds` histogram across exactly this
    /// point's heuristic-first run (snapshot before, delta after), so
    /// earlier sweep points and the pure-SMT runs cannot leak in.
    heuristic_p95_us: f64,
    /// p95 of per-partition straggler-repair time, from the same-scoped
    /// delta of `scale_repair_seconds`. Exactly `0.0` when the run repaired
    /// nothing (`repaired_apps == 0`) — straggler repair is a separate
    /// histogram from the cross-partition conflict-repair rounds, which
    /// used to pollute this number.
    repair_p95_us: f64,
    solver: SolverTotals,
    partitioned_seconds: f64,
    partitioned_solved: bool,
    partitions: usize,
    repair_rounds: usize,
    threads: usize,
    stable: usize,
    monolithic_seconds: f64,
    monolithic_solved: bool,
    monolithic_timed_out: bool,
    monolithic_budget_secs: f64,
}

impl Point {
    fn speedup(&self) -> f64 {
        if self.partitioned_seconds > 0.0 {
            self.monolithic_seconds / self.partitioned_seconds
        } else {
            f64::INFINITY
        }
    }

    /// Wall-time gain of heuristic-first over the pure-SMT partitioned path.
    fn heuristic_speedup(&self) -> f64 {
        if self.heuristic_seconds > 0.0 {
            self.partitioned_seconds / self.heuristic_seconds
        } else {
            f64::INFINITY
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("streams", Json::from(self.streams)),
            ("switches", Json::from(self.switches)),
            ("messages", Json::from(self.messages)),
            ("heuristic_seconds", Json::Float(self.heuristic_seconds)),
            ("heuristic_solved", Json::Bool(self.heuristic_solved)),
            ("heuristic_placed_apps", Json::from(self.heuristic_placed)),
            (
                "heuristic_repaired_apps",
                Json::from(self.heuristic_repaired),
            ),
            (
                "heuristic_fallback_partitions",
                Json::from(self.heuristic_fallbacks),
            ),
            (
                "heuristic_stable_applications",
                Json::from(self.heuristic_stable),
            ),
            ("heuristic_p95_us", Json::Float(self.heuristic_p95_us)),
            ("repair_p95_us", Json::Float(self.repair_p95_us)),
            ("heuristic_speedup", Json::Float(self.heuristic_speedup())),
            ("partitioned_seconds", Json::Float(self.partitioned_seconds)),
            ("partitioned_solved", Json::Bool(self.partitioned_solved)),
            ("partitions", Json::from(self.partitions)),
            ("repair_rounds", Json::from(self.repair_rounds)),
            ("threads", Json::from(self.threads)),
            ("stable_applications", Json::from(self.stable)),
            ("monolithic_seconds", Json::Float(self.monolithic_seconds)),
            ("monolithic_solved", Json::Bool(self.monolithic_solved)),
            (
                "monolithic_timed_out",
                Json::Bool(self.monolithic_timed_out),
            ),
            (
                "monolithic_budget_secs",
                Json::Float(self.monolithic_budget_secs),
            ),
            ("speedup", Json::Float(self.speedup())),
        ])
    }

    /// The flat perf-trajectory line appended to `BENCH_scale.json`: solve
    /// times of all three paths, heuristic placement statistics and the
    /// aggregated solver counters of the heuristic-first run.
    fn bench_line(&self) -> Json {
        Json::obj([
            ("streams", Json::from(self.streams)),
            ("messages", Json::from(self.messages)),
            ("heuristic_seconds", Json::Float(self.heuristic_seconds)),
            ("heuristic_solved", Json::Bool(self.heuristic_solved)),
            ("partitioned_seconds", Json::Float(self.partitioned_seconds)),
            ("monolithic_seconds", Json::Float(self.monolithic_seconds)),
            ("heuristic_speedup", Json::Float(self.heuristic_speedup())),
            ("heuristic_p95_us", Json::Float(self.heuristic_p95_us)),
            ("repair_p95_us", Json::Float(self.repair_p95_us)),
            ("placed_apps", Json::from(self.heuristic_placed)),
            ("repaired_apps", Json::from(self.heuristic_repaired)),
            ("fallback_partitions", Json::from(self.heuristic_fallbacks)),
            ("decisions", Json::Int(self.solver.decisions as i64)),
            ("conflicts", Json::Int(self.solver.conflicts as i64)),
            ("propagations", Json::Int(self.solver.propagations as i64)),
            ("theory_checks", Json::Int(self.solver.theory_checks as i64)),
            ("restarts", Json::Int(self.solver.restarts as i64)),
            (
                "theory_scratch_reuses",
                Json::Int(self.solver.theory_scratch_reuses as i64),
            ),
            (
                "deleted_clauses",
                Json::Int(self.solver.deleted_clauses as i64),
            ),
            (
                "peak_live_clauses",
                Json::Int(self.solver.peak_live_clauses as i64),
            ),
        ])
    }
}

fn scale_config(stage_timeout: Duration) -> ScaleConfig {
    ScaleConfig {
        synthesis: tsn_synthesis::SynthesisConfig {
            timeout_per_stage: Some(stage_timeout),
            ..ScaleConfig::default().synthesis
        },
        // Honest comparison: a partitioned failure is reported as such
        // rather than silently costing a monolithic solve.
        fallback_monolithic: false,
        ..ScaleConfig::default()
    }
}

fn run_point(streams: usize, budget_override: Option<Duration>, stage_timeout: Duration) -> Point {
    let scenario = LargeScaleScenario {
        topology: LargeTopology::FatTree,
        switches: 80,
        streams,
        seed: 1,
        fast_stream_percent: 12,
    };
    let problem = large_scale_problem(&scenario).expect("generator instances are well-formed");
    let switches = problem.topology().switches().len();
    let messages = problem.message_count();

    let heuristic_config = ScaleConfig {
        strategy: SynthesisStrategy::HeuristicFirst,
        ..scale_config(stage_timeout)
    };
    // Scope the phase percentiles to exactly this heuristic-first run: the
    // registry histograms are process-cumulative (earlier sweep points and
    // the pure-SMT runs below observe into them too), so snapshot before
    // and take the delta after.
    let registry = tsn_telemetry::registry();
    let heuristic_hist = registry.histogram("scale_heuristic_seconds");
    let repair_hist = registry.histogram("scale_repair_seconds");
    let heuristic_before = heuristic_hist.snapshot();
    let repair_before = repair_hist.snapshot();
    let heuristic_start = Instant::now();
    let heuristic = ScaleSynthesizer::new(heuristic_config).synthesize(&problem);
    let heuristic_seconds = heuristic_start.elapsed().as_secs_f64();
    let heuristic_p95_us = heuristic_hist
        .delta_since(&heuristic_before)
        .p95()
        .as_secs_f64()
        * 1e6;
    let repair_delta = repair_hist.delta_since(&repair_before);
    // An empty delta reports 0.0, not a bucket bound: no repairs, no p95.
    let repair_p95_us = if repair_delta.count() == 0 {
        0.0
    } else {
        repair_delta.p95().as_secs_f64() * 1e6
    };
    let (heuristic_solved, heuristic_placed, heuristic_repaired, heuristic_fallbacks, hstable) =
        match &heuristic {
            Ok(report) => (
                true,
                report.heuristic.placed_apps,
                report.heuristic.repaired_apps,
                report.heuristic.fallback_partitions,
                report.report.stable_applications,
            ),
            Err(_) => (false, 0, 0, 0, 0),
        };
    let solver = heuristic
        .as_ref()
        .map(SolverTotals::from_report)
        .unwrap_or_default();

    let partitioned_start = Instant::now();
    let partitioned = ScaleSynthesizer::new(scale_config(stage_timeout)).synthesize(&problem);
    let partitioned_seconds = partitioned_start.elapsed().as_secs_f64();
    let (partitioned_solved, partitions, repair_rounds, threads, stable) = match &partitioned {
        Ok(report) => (
            true,
            report.partitions.len(),
            report.repairs.len(),
            report.threads,
            report.report.stable_applications,
        ),
        Err(_) => (false, 0, 0, 0, 0),
    };

    // Monolithic attempt under a wall-clock budget (single stage: the
    // staging heuristic would change the explored space). The budget scales
    // with the measured partitioned time so a timeout certifies at least a
    // 6x gap on any hardware, without burning unbounded CI minutes.
    let monolithic_budget = budget_override.unwrap_or_else(|| {
        Duration::from_secs_f64((partitioned_seconds * 6.0).clamp(120.0, 900.0))
    });
    let monolithic_config = tsn_synthesis::SynthesisConfig {
        timeout_per_stage: Some(monolithic_budget),
        ..scale_config(stage_timeout).synthesis
    };
    let monolithic_start = Instant::now();
    let monolithic = Synthesizer::new(monolithic_config).synthesize(&problem);
    let monolithic_seconds = monolithic_start.elapsed().as_secs_f64();
    let (monolithic_solved, monolithic_timed_out) = match &monolithic {
        Ok(_) => (true, false),
        Err(SynthesisError::ResourceLimit { .. }) => (false, true),
        Err(_) => (false, false),
    };

    Point {
        streams,
        switches,
        messages,
        heuristic_seconds,
        heuristic_solved,
        heuristic_placed,
        heuristic_repaired,
        heuristic_fallbacks,
        heuristic_stable: hstable,
        heuristic_p95_us,
        repair_p95_us,
        solver,
        partitioned_seconds,
        partitioned_solved,
        partitions,
        repair_rounds,
        threads,
        stable,
        monolithic_seconds,
        monolithic_solved,
        monolithic_timed_out,
        monolithic_budget_secs: monolithic_budget.as_secs_f64(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "fig_scale.json".to_string());
    let bench_json = args
        .iter()
        .position(|a| a == "--bench-json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let budget_override = args
        .iter()
        .position(|a| a == "--monolithic-budget-secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs);
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if trace_out.is_some() {
        tsn_telemetry::set_enabled(true);
    }
    let stage_timeout = Duration::from_secs(if full { 300 } else { 120 });

    let stream_counts: Vec<usize> = if smoke {
        vec![500]
    } else if full {
        vec![250, 500, 1000, 2000]
    } else {
        vec![100, 250, 500]
    };

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &streams in &stream_counts {
        let point = run_point(streams, budget_override, stage_timeout);
        rows.push(vec![
            point.streams.to_string(),
            point.messages.to_string(),
            point.switches.to_string(),
            format!(
                "{} ({} placed, {} repaired)",
                seconds(point.heuristic_seconds),
                point.heuristic_placed,
                point.heuristic_repaired
            ),
            format!(
                "{} ({} parts, {} repairs)",
                seconds(point.partitioned_seconds),
                point.partitions,
                point.repair_rounds
            ),
            if point.monolithic_solved {
                seconds(point.monolithic_seconds)
            } else if point.monolithic_timed_out {
                format!(">{}", seconds(point.monolithic_seconds))
            } else {
                "failed".to_string()
            },
            format!("{:.1}x", point.heuristic_speedup()),
            format!("{}/{}", point.stable, point.streams),
        ]);
        points.push(point);
    }

    print_table(
        "Large-scale synthesis: heuristic-first vs. partitioned vs. monolithic",
        &[
            "streams",
            "messages",
            "switches",
            "heuristic [s]",
            "partitioned [s]",
            "monolithic [s]",
            "heur. speedup",
            "stable",
        ],
        &rows,
    );

    let json = Json::obj([(
        "points",
        Json::Arr(points.iter().map(Point::to_json).collect()),
    )]);
    let text = json.to_string();
    println!("JSON:{text}");
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("could not write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    if let Some(path) = trace_out {
        if let Err(e) = tsn_telemetry::dump_chrome_trace(&path) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("trace written to {path}");
    }

    if let Some(path) = bench_json {
        use std::io::Write;
        let mut lines = String::new();
        for point in points.iter().filter(|p| p.streams == 500) {
            lines.push_str(&point.bench_line().to_string());
            lines.push('\n');
        }
        if lines.is_empty() {
            eprintln!("--bench-json: no 500-stream point in this sweep, nothing appended");
        } else {
            let result = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(lines.as_bytes()));
            match result {
                Ok(()) => println!("appended {} line(s) to {path}", lines.lines().count()),
                Err(e) => {
                    eprintln!("could not append to {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
