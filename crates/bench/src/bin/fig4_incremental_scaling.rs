//! Figure 4: scalability of the incremental-synthesis heuristic.
//!
//! Synthesis time as a function of the number of messages per hyper-period,
//! for a fixed route subset of 4 alternative routes and a varying number of
//! incremental stages. Reduced sweep by default; `--full` runs the
//! paper-scale sweep (messages 10..100, stages {3,4,5,7,9,11}).

use tsn_bench::{print_table, run_point, seconds, sweep_config, HarnessOptions};
use tsn_workload::{scalability_problem, ScalabilityScenario};

fn main() {
    let options = HarnessOptions::from_args();
    let (message_counts, stage_counts, seeds): (Vec<usize>, Vec<usize>, u64) = if options.full {
        (
            (10..=100).step_by(10).collect(),
            vec![3, 4, 5, 7, 9, 11],
            10,
        )
    } else {
        (vec![10, 20, 30, 40], vec![3, 5, 7], 2)
    };
    let routes = 4;

    let mut rows = Vec::new();
    for &stages in &stage_counts {
        for &messages in &message_counts {
            let mut times = Vec::new();
            let mut solved = 0usize;
            for seed in 0..seeds {
                let problem = scalability_problem(ScalabilityScenario {
                    messages,
                    applications: 10,
                    switches: 15,
                    seed,
                })
                .expect("scenario generation");
                let point = run_point(
                    &problem,
                    sweep_config(routes, stages, options.stage_timeout, true),
                );
                if point.solved {
                    solved += 1;
                }
                times.push(point.synthesis_seconds);
            }
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let max = times.iter().cloned().fold(0.0, f64::max);
            rows.push(vec![
                stages.to_string(),
                messages.to_string(),
                seconds(mean),
                seconds(max),
                format!("{solved}/{seeds}"),
            ]);
            eprintln!(
                "stages={stages} messages={messages}: mean {:.2}s, solved {solved}/{seeds}",
                mean
            );
        }
    }
    print_table(
        "Figure 4 — synthesis time vs. number of messages (routes = 4)",
        &[
            "stages",
            "messages",
            "mean time (s)",
            "max time (s)",
            "solved",
        ],
        &rows,
    );
}
