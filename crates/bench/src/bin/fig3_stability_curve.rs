//! Figure 3: the stability curve of a DC servo (`1000 / (s^2 + s)`) with a
//! discrete controller at a 6 ms sampling period, together with its
//! piecewise-linear lower bound.

use tsn_bench::print_table;
use tsn_control::{CurveOptions, PiecewiseLinearBound, Plant, StabilityCurve};

fn main() {
    let plant = Plant::dc_servo();
    let period = 0.006;
    let curve = StabilityCurve::compute(&plant, period, CurveOptions::default())
        .expect("the DC servo loop is stable at zero delay");
    let bound =
        PiecewiseLinearBound::from_curve(&curve, 3).expect("curve has a non-empty stable range");

    let rows: Vec<Vec<String>> = curve
        .points()
        .iter()
        .map(|p| {
            let bound_jitter = bound.max_jitter(p.latency).unwrap_or(0.0);
            vec![
                format!("{:.3}", p.latency * 1e3),
                format!("{:.3}", p.max_jitter * 1e3),
                format!("{:.3}", bound_jitter * 1e3),
            ]
        })
        .collect();
    print_table(
        "Figure 3 — stability curve and piecewise-linear lower bound (DC servo, h = 6 ms)",
        &[
            "latency L (ms)",
            "curve max jitter (ms)",
            "bound max jitter (ms)",
        ],
        &rows,
    );

    let segment_rows: Vec<Vec<String>> = bound
        .segments()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                (i + 1).to_string(),
                format!("{:.3}", s.alpha),
                format!("{:.3}", s.beta * 1e3),
                format!("{:.3}", s.latency_limit * 1e3),
            ]
        })
        .collect();
    print_table(
        "Piecewise-linear segments (L + alpha * J <= beta)",
        &["segment", "alpha", "beta (ms)", "latency limit (ms)"],
        &segment_rows,
    );
}
