//! Figure 6: scalability of the route-subset heuristic.
//!
//! Synthesis time as a function of the number of messages for different
//! numbers of alternative routes per application, with the number of
//! incremental stages fixed to 5. Also reports the share of unsolved
//! problems per route count (the paper observes that 1–2 routes leave more
//! than 90 % unsolved while 3 or more leave fewer than 10 %).

use tsn_bench::{print_table, run_point, seconds, sweep_config, HarnessOptions};
use tsn_workload::{scalability_problem, ScalabilityScenario};

fn main() {
    let options = HarnessOptions::from_args();
    let (route_counts, message_counts, seeds): (Vec<usize>, Vec<usize>, u64) = if options.full {
        (vec![1, 3, 5, 7, 20], (10..=100).step_by(10).collect(), 10)
    } else {
        (vec![1, 3, 5], vec![10, 20, 30, 40], 2)
    };
    let stages = 5;

    let mut rows = Vec::new();
    for &routes in &route_counts {
        let mut unsolved = 0usize;
        let mut total = 0usize;
        for &messages in &message_counts {
            let mut times = Vec::new();
            let mut solved = 0usize;
            for seed in 0..seeds {
                let problem = scalability_problem(ScalabilityScenario {
                    messages,
                    applications: 10,
                    switches: 15,
                    seed,
                })
                .expect("scenario generation");
                let point = run_point(
                    &problem,
                    sweep_config(routes, stages, options.stage_timeout, true),
                );
                total += 1;
                if point.solved {
                    solved += 1;
                } else {
                    unsolved += 1;
                }
                times.push(point.synthesis_seconds);
            }
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            rows.push(vec![
                routes.to_string(),
                messages.to_string(),
                seconds(mean),
                format!("{solved}/{seeds}"),
            ]);
            eprintln!(
                "routes={routes} messages={messages}: mean {mean:.2}s solved {solved}/{seeds}"
            );
        }
        let percent = 100.0 * unsolved as f64 / total.max(1) as f64;
        rows.push(vec![
            routes.to_string(),
            "(all)".to_string(),
            "-".to_string(),
            format!("{percent:.1}% unsolved"),
        ]);
    }
    print_table(
        "Figure 6 — synthesis time vs. number of messages (stages = 5)",
        &["routes", "messages", "mean time (s)", "solved"],
        &rows,
    );
}
