//! Online admission: per-event latency and disruption vs. network load.
//!
//! Runs seeded dynamic event traces through the online admission engine at
//! increasing load levels (target slot occupancy) and reports, per load,
//! the admission latency distribution (min/median/max), the admit/reject
//! mix, fallback full re-syntheses and total disruption. This is the first
//! benchmark where warm-started solver speed is directly observable as a
//! product metric: the same trace replayed cold would pay a full solve per
//! event.
//!
//! Besides the human-readable table, every sweep point is emitted as one
//! JSON line on stdout (prefixed `JSON:`), using the offline wire format of
//! `tsn_net::json` — the machine-readable interface of the bench suite.

use std::time::Duration;

use tsn_bench::{print_table, HarnessOptions};
use tsn_net::json::Json;
use tsn_net::Time;
use tsn_online::{NetworkEvent, OnlineConfig, OnlineEngine, TraceSummary};
use tsn_workload::{event_trace, DynamicScenario, DynamicTopology};

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn percentile(sorted: &[Duration], fraction: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * fraction).round() as usize;
    sorted[idx]
}

fn main() {
    let options = HarnessOptions::from_args();
    let (loads, events, seeds): (Vec<f64>, usize, u64) = if options.full {
        (vec![0.2, 0.4, 0.6, 0.8, 1.0], 120, 5)
    } else {
        (vec![0.3, 0.6, 0.9], 48, 2)
    };

    let mut rows = Vec::new();
    for &load in &loads {
        let mut admit_latencies: Vec<Duration> = Vec::new();
        let mut summary_total = TraceSummary::default();
        for seed in 0..seeds {
            let scenario = DynamicScenario {
                topology: DynamicTopology::Grid { switches: 6 },
                slots: 6,
                events,
                load,
                seed,
            };
            let (network, trace) = event_trace(&scenario);
            let mut engine = OnlineEngine::new(
                network.topology,
                Time::from_micros(5),
                OnlineConfig::default(),
            );
            let reports = engine.run_trace(trace);
            for report in &reports {
                if matches!(report.event, NetworkEvent::AdmitApp { .. }) {
                    admit_latencies.push(report.latency);
                }
            }
            let summary = TraceSummary::from_reports(&reports);
            summary_total.events += summary.events;
            summary_total.admitted += summary.admitted;
            summary_total.fallbacks += summary.fallbacks;
            summary_total.rejected += summary.rejected;
            summary_total.removed += summary.removed;
            summary_total.reroutes += summary.reroutes;
            summary_total.evicted += summary.evicted;
            summary_total.rescheduled += summary.rescheduled;
            summary_total.max_latency = summary_total.max_latency.max(summary.max_latency);
            summary_total.total_latency += summary.total_latency;
        }
        admit_latencies.sort_unstable();
        let min = admit_latencies.first().copied().unwrap_or_default();
        let median = percentile(&admit_latencies, 0.5);
        let max = admit_latencies.last().copied().unwrap_or_default();
        eprintln!(
            "load={load:.1}: {} admissions, median {:.0}us, max {:.0}us, {} fallbacks",
            summary_total.admitted,
            micros(median),
            micros(max),
            summary_total.fallbacks,
        );
        let point = Json::obj([
            ("figure", Json::from("online_admission")),
            ("load", Json::Float(load)),
            ("events", Json::from(summary_total.events)),
            ("admitted", Json::from(summary_total.admitted)),
            ("rejected", Json::from(summary_total.rejected)),
            ("fallbacks", Json::from(summary_total.fallbacks)),
            ("reroutes", Json::from(summary_total.reroutes)),
            ("evicted", Json::from(summary_total.evicted)),
            ("rescheduled", Json::from(summary_total.rescheduled)),
            ("admit_latency_min_us", Json::Float(micros(min))),
            ("admit_latency_median_us", Json::Float(micros(median))),
            ("admit_latency_max_us", Json::Float(micros(max))),
        ]);
        println!("JSON: {point}");
        rows.push(vec![
            format!("{load:.1}"),
            summary_total.admitted.to_string(),
            summary_total.rejected.to_string(),
            summary_total.fallbacks.to_string(),
            summary_total.rescheduled.to_string(),
            format!("{:.0}", micros(min)),
            format!("{:.0}", micros(median)),
            format!("{:.0}", micros(max)),
        ]);
    }
    print_table(
        "Online admission — latency and disruption vs. network load (6-switch grid, 6 slots)",
        &[
            "load",
            "admitted",
            "rejected",
            "fallbacks",
            "rescheduled",
            "min (us)",
            "median (us)",
            "max (us)",
        ],
        &rows,
    );
}
