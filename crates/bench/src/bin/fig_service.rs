//! Service throughput: a load-generator client for the synthesis daemon.
//!
//! Drives N tenants in parallel (one TCP connection each) through seeded
//! mixed request traces — online admission events interleaved with one-shot
//! `synthesize` requests from a shared problem pool — and reports
//! throughput, per-class latency percentiles and the cache-hit speedup.
//! By default the daemon is spawned in-process on an ephemeral port;
//! `--connect HOST:PORT` drives an external `tsn-serviced` instead (the CI
//! smoke job does that and then asserts the daemon exits cleanly).
//!
//! The run fails (exit 1) if cache hits are not measurably faster than cold
//! solves — the whole point of the content-addressed cache — or if any
//! request errors unexpectedly.
//!
//! With `--burst N` (N > 1) the tenant traces turn bursty — whole event
//! windows travel as single `event_batch` requests the daemon commits with
//! one joint batched solve — and an extra *coalescing burst* phase fires
//! several identical cold `synthesize` requests from parallel connections
//! at once, asserting (exit 1 otherwise) that the daemon coalesced the
//! concurrent misses into fewer solves than requests; the daemon-side
//! `solves`/`coalesced_misses` counters land in the JSON output.
//!
//! Before shutting the daemon down the client issues a `metrics` request
//! and folds the daemon's own telemetry into the JSON output:
//! `daemon_requests_total`, `daemon_solve_seconds_count` and the pool
//! queue-wait percentiles `queue_wait_p50_us`/`queue_wait_p95_us` (from the
//! `service_queue_wait_seconds` histogram — submit-to-worker-pickup time
//! the client-side round trips cannot see).
//!
//! Options: `--full` (bigger sweep), `--tenants N`, `--events N`,
//! `--burst N`, `--seed N`, `--connect ADDR`, `--no-shutdown`,
//! `--out FILE`, `--trace-out FILE` (record this process's flight recorder
//! — including the in-process daemon's spans when `--connect` is not used —
//! and write chrome-trace JSON on exit).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tsn_bench::print_table;
use tsn_net::json::Json;
use tsn_service::protocol::{Request, RequestBody, Response};
use tsn_service::{serve, Service, ServiceConfig};
use tsn_workload::{pool_problem, service_trace, ServiceScenario, TenantTrace};

#[derive(Debug, Clone)]
struct Options {
    tenants: usize,
    events: usize,
    burst: usize,
    seed: u64,
    connect: Option<String>,
    shutdown: bool,
    out: Option<String>,
    trace_out: Option<String>,
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let value_of = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let num = |flag: &str, default: usize| -> usize {
        value_of(flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    Options {
        tenants: num("--tenants", if full { 8 } else { 4 }),
        events: num("--events", if full { 40 } else { 24 }),
        burst: num("--burst", 1),
        seed: num("--seed", 0) as u64,
        connect: value_of("--connect").cloned(),
        shutdown: !args.iter().any(|a| a == "--no-shutdown"),
        out: value_of("--out").cloned(),
        trace_out: value_of("--trace-out").cloned(),
    }
}

/// One measured request: its class and round-trip latency.
#[derive(Debug, Clone, Copy)]
enum Class {
    Event,
    SynthCold,
    SynthHit,
    Admin,
}

#[derive(Debug, Default)]
struct Measurements {
    events: Vec<Duration>,
    synth_cold: Vec<Duration>,
    synth_hit: Vec<Duration>,
    admin: Vec<Duration>,
    errors: usize,
}

impl Measurements {
    fn record(&mut self, class: Class, latency: Duration) {
        match class {
            Class::Event => self.events.push(latency),
            Class::SynthCold => self.synth_cold.push(latency),
            Class::SynthHit => self.synth_hit.push(latency),
            Class::Admin => self.admin.push(latency),
        }
    }

    fn total(&self) -> usize {
        self.events.len() + self.synth_cold.len() + self.synth_hit.len() + self.admin.len()
    }
}

fn percentile(sorted: &[Duration], fraction: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * fraction).round() as usize;
    sorted[idx]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn drive_tenant(trace: &TenantTrace, addr: SocketAddr, totals: &Mutex<Measurements>) {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut local = Measurements::default();
    for request in &trace.requests {
        let mut line = request.to_line();
        line.push('\n');
        let start = Instant::now();
        writer.write_all(line.as_bytes()).expect("send request");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read response");
        let latency = start.elapsed();
        let response = Response::parse_line(&reply).expect("parse response");
        if response.outcome.is_err() {
            local.errors += 1;
        }
        // Events and admin requests are measured as client round trips
        // (throughput view). The cold-vs-hit comparison uses the daemon's
        // own service time (`elapsed_us`): on a loaded single-core host the
        // round trip is dominated by queueing behind other tenants' solves,
        // which would mask the cache entirely.
        let (class, measured) = match &request.body {
            RequestBody::Event { .. } | RequestBody::EventBatch { .. } => (Class::Event, latency),
            RequestBody::Synthesize { .. } => {
                let service_time = Duration::from_micros(response.elapsed_us.max(0) as u64);
                if response.cached {
                    (Class::SynthHit, service_time)
                } else {
                    (Class::SynthCold, service_time)
                }
            }
            _ => (Class::Admin, latency),
        };
        local.record(class, measured);
    }
    let mut totals = totals.lock().expect("measurement lock");
    totals.events.extend(local.events);
    totals.synth_cold.extend(local.synth_cold);
    totals.synth_hit.extend(local.synth_hit);
    totals.admin.extend(local.admin);
    totals.errors += local.errors;
}

/// One synchronous request/response exchange on a fresh connection.
fn round_trip(addr: SocketAddr, request: &Request) -> Option<Response> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    let mut line = request.to_line();
    line.push('\n');
    writer.write_all(line.as_bytes()).ok()?;
    let mut reply = String::new();
    reader.read_line(&mut reply).ok()?;
    Response::parse_line(&reply).ok()
}

fn daemon_counter(addr: SocketAddr, key: &str) -> i64 {
    round_trip(
        addr,
        &Request {
            id: 0,
            trace: None,
            body: RequestBody::Stats,
        },
    )
    .and_then(|r| r.outcome.ok())
    .and_then(|stats| stats.get(key).and_then(Json::as_i64))
    .unwrap_or(-1)
}

/// The coalescing burst: fires `clients` identical cold `synthesize`
/// requests from parallel connections and reports how many rounds it took
/// until the daemon's `coalesced_misses` counter moved (identical
/// concurrent misses sharing one solve). Returns `None` when no round
/// coalesced — a broken miss-coalescing path.
fn coalesce_burst(addr: SocketAddr, clients: usize, rounds: usize) -> Option<usize> {
    for round in 0..rounds {
        let before = daemon_counter(addr, "coalesced_misses");
        if before < 0 {
            // The stats probe itself failed; a -1 sentinel would make any
            // successful post-burst read look like progress.
            continue;
        }
        // A problem the trace pool never used, so every round is cold.
        let problem = pool_problem(100 + round);
        std::thread::scope(|scope| {
            for i in 0..clients {
                let problem = problem.clone();
                scope.spawn(move || {
                    round_trip(
                        addr,
                        &Request {
                            id: 9_000 + i as i64,
                            trace: None,
                            body: RequestBody::Synthesize {
                                problem,
                                config: None,
                                backend: tsn_service::protocol::Backend::Auto,
                            },
                        },
                    )
                });
            }
        });
        if daemon_counter(addr, "coalesced_misses") > before {
            return Some(round + 1);
        }
    }
    None
}

fn run(addr: SocketAddr, options: &Options) -> (Measurements, Duration, Json) {
    let scenario = ServiceScenario {
        tenants: options.tenants,
        events_per_tenant: options.events,
        synthesize_every: 4,
        problem_pool: 3,
        burst: options.burst,
        seed: options.seed,
    };
    let traces = service_trace(&scenario);
    let totals = Mutex::new(Measurements::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for trace in &traces {
            let totals = &totals;
            scope.spawn(move || drive_tenant(trace, addr, totals));
        }
    });
    let wall = start.elapsed();
    let mut m = totals.into_inner().expect("measurement lock");
    m.events.sort_unstable();
    m.synth_cold.sort_unstable();
    m.synth_hit.sort_unstable();
    m.admin.sort_unstable();

    let requests = m.total();
    let throughput = requests as f64 / wall.as_secs_f64();
    let cold_median = percentile(&m.synth_cold, 0.5);
    let hit_median = percentile(&m.synth_hit, 0.5);
    let speedup = if hit_median > Duration::ZERO {
        micros(cold_median) / micros(hit_median)
    } else {
        0.0
    };
    let json = Json::obj([
        ("figure", Json::from("service_throughput")),
        ("tenants", Json::from(options.tenants)),
        ("requests", Json::from(requests)),
        ("errors", Json::from(m.errors)),
        ("wall_seconds", Json::Float(wall.as_secs_f64())),
        ("throughput_rps", Json::Float(throughput)),
        (
            "event_p50_us",
            Json::Float(micros(percentile(&m.events, 0.5))),
        ),
        (
            "event_p95_us",
            Json::Float(micros(percentile(&m.events, 0.95))),
        ),
        (
            "event_max_us",
            Json::Float(micros(m.events.last().copied().unwrap_or_default())),
        ),
        ("synth_cold", Json::from(m.synth_cold.len())),
        ("synth_cold_p50_us", Json::Float(micros(cold_median))),
        ("cache_hits", Json::from(m.synth_hit.len())),
        ("cache_hit_p50_us", Json::Float(micros(hit_median))),
        ("cache_speedup", Json::Float(speedup)),
    ]);
    (m, wall, json)
}

fn main() -> ExitCode {
    let options = parse_options();
    if options.trace_out.is_some() {
        tsn_telemetry::set_enabled(true);
    }

    // Either connect to an external daemon or spawn one in-process.
    let (addr, in_process) = match &options.connect {
        Some(target) => {
            let addr: SocketAddr = match target.parse() {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("fig_service: bad --connect address {target:?}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (addr, None)
        }
        None => {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            let addr = listener.local_addr().expect("local addr");
            // At least four pool workers even on small hosts: the
            // coalescing burst needs concurrent identical requests to
            // *overlap* inside the service, which a single worker would
            // serialize away.
            let workers = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .max(4);
            let service = Arc::new(Service::new(ServiceConfig {
                workers,
                ..ServiceConfig::default()
            }));
            let handle = {
                let service = Arc::clone(&service);
                std::thread::spawn(move || serve(&service, listener))
            };
            (addr, Some((service, handle)))
        }
    };

    let (measurements, wall, mut json) = run(addr, &options);

    // The coalescing burst (bursty runs only): identical cold synthesize
    // requests from parallel connections must share one daemon-side solve.
    let coalesce_rounds = (options.burst > 1).then(|| coalesce_burst(addr, 6, 8));

    // Ask the daemon for its own view of the cache — and its telemetry
    // registry — before shutting down.
    let (stats, exposition) = {
        let stream = TcpStream::connect(addr).expect("connect for stats");
        let mut writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);
        let mut ask = |body: RequestBody| -> Option<Json> {
            let mut line = Request {
                id: 0,
                trace: None,
                body,
            }
            .to_line();
            line.push('\n');
            writer.write_all(line.as_bytes()).ok()?;
            let mut reply = String::new();
            reader.read_line(&mut reply).ok()?;
            Response::parse_line(&reply).ok()?.outcome.ok()
        };
        let stats = ask(RequestBody::Stats);
        let exposition = ask(RequestBody::Metrics).and_then(|payload| {
            payload
                .get("exposition")
                .and_then(Json::as_str)
                .map(str::to_string)
        });
        if options.shutdown {
            let _ = ask(RequestBody::Shutdown);
        }
        (stats, exposition)
    };
    if let Some((_, handle)) = in_process {
        if options.shutdown {
            match handle.join() {
                Ok(Ok(())) => eprintln!("in-process daemon drained cleanly"),
                other => {
                    eprintln!("fig_service: daemon did not exit cleanly: {other:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // Daemon-side counters and burst results join the JSON artifact (the
    // client-side keys keep their names; daemon counters get a prefix).
    if let Json::Obj(pairs) = &mut json {
        pairs.push(("burst".to_string(), Json::from(options.burst)));
        if let Some(result) = &coalesce_rounds {
            pairs.push((
                "coalesce_burst_rounds".to_string(),
                Json::Int(result.map_or(-1, |r| r as i64)),
            ));
        }
        if let Some(stats) = &stats {
            for key in ["solves", "coalesced_misses", "backlog_batches"] {
                pairs.push((
                    format!("daemon_{key}"),
                    stats.get(key).cloned().unwrap_or(Json::Int(-1)),
                ));
            }
        }
        // Daemon-side telemetry: total requests, solve-histogram count and
        // the pool queue-wait percentiles (all -1 if the metrics request
        // failed — the smoke job asserts them nonzero).
        let expo = exposition.as_deref().unwrap_or("");
        let count = |name: &str| {
            tsn_telemetry::sample_value(expo, name).map_or(Json::Int(-1), |v| Json::Int(v as i64))
        };
        let quantile_us = |name: &str, q: f64| {
            tsn_telemetry::histogram_quantile(expo, name, q)
                .map_or(Json::Int(-1), |secs| Json::Float(secs * 1e6))
        };
        pairs.push(("daemon_requests_total".to_string(), count("requests_total")));
        pairs.push((
            "daemon_solve_seconds_count".to_string(),
            count("solve_seconds_count"),
        ));
        pairs.push((
            "queue_wait_p50_us".to_string(),
            quantile_us("service_queue_wait_seconds", 0.5),
        ));
        pairs.push((
            "queue_wait_p95_us".to_string(),
            quantile_us("service_queue_wait_seconds", 0.95),
        ));
    }

    // Human-readable summary.
    eprintln!(
        "{} requests over {} tenants in {:.2}s ({:.1} req/s), {} cache hits",
        measurements.total(),
        options.tenants,
        wall.as_secs_f64(),
        measurements.total() as f64 / wall.as_secs_f64(),
        measurements.synth_hit.len(),
    );
    print_table(
        "Service throughput — mixed multi-tenant load \
         (events/admin: client round trip; synth: daemon service time)",
        &["class", "count", "p50 (us)", "p95 (us)", "max (us)"],
        &[
            ("events", &measurements.events),
            ("synth cold", &measurements.synth_cold),
            ("synth hit", &measurements.synth_hit),
            ("admin", &measurements.admin),
        ]
        .iter()
        .map(|(name, lat)| {
            vec![
                (*name).to_string(),
                lat.len().to_string(),
                format!("{:.0}", micros(percentile(lat, 0.5))),
                format!("{:.0}", micros(percentile(lat, 0.95))),
                format!("{:.0}", micros(lat.last().copied().unwrap_or_default())),
            ]
        })
        .collect::<Vec<_>>(),
    );
    if let Some(stats) = &stats {
        eprintln!("daemon stats: {stats}");
    }
    println!("JSON: {json}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("fig_service: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &options.trace_out {
        if let Err(e) = tsn_telemetry::dump_chrome_trace(path) {
            eprintln!("fig_service: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {path}");
    }

    // Acceptance checks: a mixed run must be error-free (tenant traces
    // never produce protocol errors) and cache hits must beat cold solves.
    if measurements.errors > 0 {
        eprintln!(
            "fig_service: {} unexpected error responses",
            measurements.errors
        );
        return ExitCode::FAILURE;
    }
    if coalesce_rounds == Some(None) {
        eprintln!(
            "fig_service: concurrent identical cold synthesize requests never \
             coalesced onto one solve"
        );
        return ExitCode::FAILURE;
    }
    // The comparison needs both classes: a re-run against an already-warm
    // external daemon can see zero cold solves, which proves nothing
    // against the cache (and an empty percentile would read as 0).
    let cold_median = percentile(&measurements.synth_cold, 0.5);
    let hit_median = percentile(&measurements.synth_hit, 0.5);
    if !measurements.synth_hit.is_empty()
        && !measurements.synth_cold.is_empty()
        && hit_median >= cold_median
    {
        eprintln!(
            "fig_service: cache hits (p50 {:.0}us) are not faster than cold solves (p50 {:.0}us)",
            micros(hit_median),
            micros(cold_median),
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
