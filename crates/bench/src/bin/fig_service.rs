//! Service throughput: a load-generator client for the synthesis daemon.
//!
//! Drives N tenants in parallel (one TCP connection each) through seeded
//! mixed request traces — online admission events interleaved with one-shot
//! `synthesize` requests from a shared problem pool — and reports
//! throughput, per-class latency percentiles and the cache-hit speedup.
//! By default the daemon is spawned in-process on an ephemeral port;
//! `--connect HOST:PORT` drives an external `tsn-serviced` instead (the CI
//! smoke job does that and then asserts the daemon exits cleanly).
//!
//! The run fails (exit 1) if cache hits are not measurably faster than cold
//! solves — the whole point of the content-addressed cache — or if any
//! request errors unexpectedly.
//!
//! With `--burst N` (N > 1) the tenant traces turn bursty — whole event
//! windows travel as single `event_batch` requests the daemon commits with
//! one joint batched solve — and an extra *coalescing burst* phase fires
//! several identical cold `synthesize` requests from parallel connections
//! at once, asserting (exit 1 otherwise) that the daemon coalesced the
//! concurrent misses into fewer solves than requests; the daemon-side
//! `solves`/`coalesced_misses` counters land in the JSON output.
//!
//! Before shutting the daemon down the client issues a `metrics` request
//! and folds the daemon's own telemetry into the JSON output:
//! `daemon_requests_total`, `daemon_solve_seconds_count` and the pool
//! queue-wait percentiles `queue_wait_p50_us`/`queue_wait_p95_us` (from the
//! `service_queue_wait_seconds` histogram — submit-to-worker-pickup time
//! the client-side round trips cannot see).
//!
//! With `--capacity` the mixed run is followed by a *closed-loop capacity
//! ramp*: warm cache-hit `synthesize` round trips are offered at a paced
//! rate that doubles each step until the step's p95 breaches
//! `--capacity-bound-us` (default 20000) or the achieved rate falls below
//! 80% of the offered rate. The last sustainable step's achieved rate is
//! the daemon's max-sustainable throughput; `--bench-json PATH` *appends*
//! one flat JSON line per run to `PATH` — the service perf trajectory
//! (`BENCH_service.json`), same append-only convention as
//! `BENCH_scale.json` — with `streams`, `max_rps`, the capacity-point
//! percentiles and the per-tenant labeled series count.
//!
//! Every run (capacity or not) also fires a *rejection probe* — a request
//! for a tenant that was never opened — and asserts the daemon answers
//! with a typed error; the probe leaves a `warn` event in the daemon's
//! structured log, which the CI smoke job asserts on.
//!
//! With `--shards N` (N > 1, in-process runs only) the load is served by a
//! fleet: N daemons on ephemeral ports behind an in-process `tsn_router`
//! front-end, all requests travelling through the router. Tenants spread
//! over the shards by consistent hashing and one-shot `synthesize`
//! requests route by content, so identical problems keep hitting one
//! shard's cache; the aggregated `stats`/`metrics`/`health` fan-outs feed
//! the same JSON fields (counters summed across shards, percentiles from
//! the worst shard) and the JSON line gains a `shards` member.
//!
//! With `--overload` the mixed run is replaced by an *overload probe*
//! against a deliberately tiny daemon — one pool worker, shed watermark 1
//! (spawned in-process, or the `--connect` target, which must be started
//! with `--workers 1 --shed-watermark 1`). One connection pipelines a
//! deliberately slow cold `synthesize` (request-carried fine-granularity
//! stability grid) followed by a burst of distinct cold ones; the slow
//! solve pins the only worker, so the daemon must shed most of the burst
//! with typed `retry_after_ms` rejections and count them in
//! `service_shed_total`. The probe fails (exit 1) if nothing was shed, if
//! a rejection lacks the backoff hint, or if the shed counter never moved.
//!
//! Options: `--full` (bigger sweep), `--tenants N`, `--events N`,
//! `--burst N`, `--seed N`, `--shards N`, `--connect ADDR`,
//! `--no-shutdown`, `--capacity`, `--capacity-bound-us N`, `--overload`,
//! `--bench-json FILE`, `--out FILE`, `--trace-out FILE` (record this
//! process's flight recorder — including the in-process daemon's spans
//! when `--connect` is not used — and write chrome-trace JSON on exit).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tsn_bench::print_table;
use tsn_net::json::Json;
use tsn_router::{Router, RouterConfig};
use tsn_service::protocol::{Backend, Request, RequestBody, Response};
use tsn_service::{serve, Service, ServiceConfig};
use tsn_workload::{pool_problem, service_trace, ServiceScenario, TenantTrace};

#[derive(Debug, Clone)]
struct Options {
    tenants: usize,
    events: usize,
    burst: usize,
    seed: u64,
    shards: usize,
    connect: Option<String>,
    shutdown: bool,
    capacity: bool,
    capacity_bound_us: u64,
    overload: bool,
    bench_json: Option<String>,
    out: Option<String>,
    trace_out: Option<String>,
    full: bool,
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let value_of = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let num = |flag: &str, default: usize| -> usize {
        value_of(flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    Options {
        tenants: num("--tenants", if full { 8 } else { 4 }),
        events: num("--events", if full { 40 } else { 24 }),
        burst: num("--burst", 1),
        seed: num("--seed", 0) as u64,
        shards: num("--shards", 1).max(1),
        connect: value_of("--connect").cloned(),
        shutdown: !args.iter().any(|a| a == "--no-shutdown"),
        capacity: args.iter().any(|a| a == "--capacity"),
        capacity_bound_us: num("--capacity-bound-us", 20_000) as u64,
        overload: args.iter().any(|a| a == "--overload"),
        bench_json: value_of("--bench-json").cloned(),
        out: value_of("--out").cloned(),
        trace_out: value_of("--trace-out").cloned(),
        full,
    }
}

/// One measured request: its class and round-trip latency.
#[derive(Debug, Clone, Copy)]
enum Class {
    Event,
    SynthCold,
    SynthHit,
    Admin,
}

#[derive(Debug, Default)]
struct Measurements {
    events: Vec<Duration>,
    synth_cold: Vec<Duration>,
    synth_hit: Vec<Duration>,
    admin: Vec<Duration>,
    errors: usize,
}

impl Measurements {
    fn record(&mut self, class: Class, latency: Duration) {
        match class {
            Class::Event => self.events.push(latency),
            Class::SynthCold => self.synth_cold.push(latency),
            Class::SynthHit => self.synth_hit.push(latency),
            Class::Admin => self.admin.push(latency),
        }
    }

    fn total(&self) -> usize {
        self.events.len() + self.synth_cold.len() + self.synth_hit.len() + self.admin.len()
    }
}

fn percentile(sorted: &[Duration], fraction: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * fraction).round() as usize;
    sorted[idx]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn drive_tenant(trace: &TenantTrace, addr: SocketAddr, totals: &Mutex<Measurements>) {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    // Request/response on one-line messages: without TCP_NODELAY, Nagle
    // plus delayed ACKs turns every round trip into a ~40 ms stall.
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut local = Measurements::default();
    for request in &trace.requests {
        let mut line = request.to_line();
        line.push('\n');
        let start = Instant::now();
        writer.write_all(line.as_bytes()).expect("send request");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read response");
        let latency = start.elapsed();
        let response = Response::parse_line(&reply).expect("parse response");
        if response.outcome.is_err() {
            local.errors += 1;
        }
        // Events and admin requests are measured as client round trips
        // (throughput view). The cold-vs-hit comparison uses the daemon's
        // own service time (`elapsed_us`): on a loaded single-core host the
        // round trip is dominated by queueing behind other tenants' solves,
        // which would mask the cache entirely.
        let (class, measured) = match &request.body {
            RequestBody::Event { .. } | RequestBody::EventBatch { .. } => (Class::Event, latency),
            RequestBody::Synthesize { .. } => {
                let service_time = Duration::from_micros(response.elapsed_us.max(0) as u64);
                if response.cached {
                    (Class::SynthHit, service_time)
                } else {
                    (Class::SynthCold, service_time)
                }
            }
            _ => (Class::Admin, latency),
        };
        local.record(class, measured);
    }
    let mut totals = totals.lock().expect("measurement lock");
    totals.events.extend(local.events);
    totals.synth_cold.extend(local.synth_cold);
    totals.synth_hit.extend(local.synth_hit);
    totals.admin.extend(local.admin);
    totals.errors += local.errors;
}

/// One synchronous request/response exchange on a fresh connection.
fn round_trip(addr: SocketAddr, request: &Request) -> Option<Response> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    let mut line = request.to_line();
    line.push('\n');
    writer.write_all(line.as_bytes()).ok()?;
    let mut reply = String::new();
    reader.read_line(&mut reply).ok()?;
    Response::parse_line(&reply).ok()
}

fn daemon_counter(addr: SocketAddr, key: &str) -> i64 {
    round_trip(
        addr,
        &Request {
            id: 0,
            trace: None,
            body: RequestBody::Stats,
        },
    )
    .and_then(|r| r.outcome.ok())
    .and_then(|stats| stats.get(key).and_then(Json::as_i64))
    .unwrap_or(-1)
}

/// The coalescing burst: fires `clients` identical cold `synthesize`
/// requests from parallel connections and reports how many rounds it took
/// until the daemon's `coalesced_misses` counter moved (identical
/// concurrent misses sharing one solve). Returns `None` when no round
/// coalesced — a broken miss-coalescing path.
fn coalesce_burst(addr: SocketAddr, clients: usize, rounds: usize) -> Option<usize> {
    for round in 0..rounds {
        let before = daemon_counter(addr, "coalesced_misses");
        if before < 0 {
            // The stats probe itself failed; a -1 sentinel would make any
            // successful post-burst read look like progress.
            continue;
        }
        // A problem the trace pool never used, so every round is cold.
        let problem = pool_problem(100 + round);
        std::thread::scope(|scope| {
            for i in 0..clients {
                let problem = problem.clone();
                scope.spawn(move || {
                    round_trip(
                        addr,
                        &Request {
                            id: 9_000 + i as i64,
                            trace: None,
                            body: RequestBody::Synthesize {
                                problem,
                                config: None,
                                backend: tsn_service::protocol::Backend::Auto,
                            },
                        },
                    )
                });
            }
        });
        if daemon_counter(addr, "coalesced_misses") > before {
            return Some(round + 1);
        }
    }
    None
}

/// First pool variant the overload probe draws from — far outside both the
/// trace pool and the coalescing-burst range, so every probe request is a
/// distinct cold miss (identical requests would coalesce instead of queue).
const OVERLOAD_VARIANT: usize = 8_800;
/// Cold requests pipelined behind the slow one. With one worker and
/// watermark 1, the first of these queues and every later one must shed.
const OVERLOAD_BURST: usize = 16;

/// One overload-probe request: a distinct cold problem per `i`. The `slow`
/// request carries a deliberately fine stability grid — orders of magnitude
/// more constraint points than the service default — so its solve reliably
/// outlasts the event loop's parsing of the burst pipelined behind it.
fn overload_request(i: usize, slow: bool) -> Request {
    Request {
        id: 80_000 + i as i64,
        trace: None,
        body: RequestBody::Synthesize {
            problem: pool_problem(OVERLOAD_VARIANT + i),
            config: slow.then(|| tsn_synthesis::SynthesisConfig {
                stages: 1,
                mode: tsn_synthesis::ConstraintMode::StabilityAware {
                    granularity: tsn_net::Time::from_micros(500),
                },
                ..tsn_synthesis::SynthesisConfig::default()
            }),
            backend: Backend::Auto,
        },
    }
}

/// The `--overload` probe: drives a one-worker watermark-1 daemon past its
/// queue watermark and asserts the load-shedding path end to end — typed
/// `retry_after_ms` rejections on the wire and a moving
/// `service_shed_total` counter in the metrics exposition.
fn run_overload(options: &Options) -> ExitCode {
    let (addr, in_process): (SocketAddr, ServeHandles) = match &options.connect {
        Some(target) => match target.parse() {
            Ok(addr) => (addr, Vec::new()),
            Err(e) => {
                eprintln!("fig_service: bad --connect address {target:?}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind daemon port");
            let addr = listener.local_addr().expect("daemon addr");
            let service = Arc::new(Service::new(ServiceConfig {
                workers: 1,
                shed_watermark: 1,
                ..ServiceConfig::default()
            }));
            let handle = std::thread::spawn(move || serve(&service, listener));
            (addr, vec![("daemon".to_string(), handle)])
        }
    };

    // One connection, one pipelined write: the slow solve followed by the
    // whole cold burst. The daemon parses the burst while the slow solve
    // still owns the single worker, so the queue-depth check sees at least
    // one waiting job and sheds the rest.
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut bytes = Vec::new();
    for i in 0..=OVERLOAD_BURST {
        bytes.extend_from_slice(overload_request(i, i == 0).to_line().as_bytes());
        bytes.push(b'\n');
    }
    writer.write_all(&bytes).expect("send pipelined burst");

    let mut served = 0usize;
    let mut rejections = 0usize;
    for i in 0..=OVERLOAD_BURST {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read response");
        let response = Response::parse_line(&reply).expect("parse response");
        if response.id != 80_000 + i as i64 {
            eprintln!(
                "fig_service: overload responses out of order: got id {} at position {i}",
                response.id
            );
            return ExitCode::FAILURE;
        }
        match &response.outcome {
            Ok(_) => {
                if i == 0 && response.retry_after_ms.is_some() {
                    eprintln!("fig_service: the slow solve was shed — nothing pinned the worker");
                    return ExitCode::FAILURE;
                }
                served += 1;
            }
            Err(message) if response.retry_after_ms.is_some() => {
                if !message.contains("overloaded") {
                    eprintln!("fig_service: shed rejection without a typed message: {message}");
                    return ExitCode::FAILURE;
                }
                rejections += 1;
            }
            Err(message) => {
                eprintln!(
                    "fig_service: overload request {i} failed without a backoff hint: {message}"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    drop(reader);
    drop(writer);

    let shed_total = round_trip(
        addr,
        &Request {
            id: 80_999,
            trace: None,
            body: RequestBody::Metrics,
        },
    )
    .and_then(|r| r.outcome.ok())
    .and_then(|payload| {
        let expo = payload.get("exposition")?.as_str()?.to_string();
        tsn_telemetry::sample_value(&expo, "service_shed_total")
    })
    .map_or(-1, |v| v as i64);

    if options.shutdown {
        let _ = round_trip(
            addr,
            &Request {
                id: 81_000,
                trace: None,
                body: RequestBody::Shutdown,
            },
        );
        for (name, handle) in in_process {
            match handle.join() {
                Ok(Ok(())) => eprintln!("in-process {name} drained cleanly"),
                other => {
                    eprintln!("fig_service: in-process {name} did not exit cleanly: {other:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let json = Json::obj([
        ("figure", Json::from("service_overload")),
        ("requests", Json::from(OVERLOAD_BURST + 1)),
        ("served", Json::from(served)),
        ("rejections", Json::from(rejections)),
        ("daemon_shed_total", Json::Int(shed_total)),
    ]);
    eprintln!(
        "overload probe: {served} served, {rejections} shed with retry_after, \
         daemon shed counter {shed_total}"
    );
    println!("JSON: {json}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("fig_service: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if rejections == 0 {
        eprintln!("fig_service: an overloaded one-worker daemon shed nothing");
        return ExitCode::FAILURE;
    }
    if shed_total < rejections as i64 {
        eprintln!(
            "fig_service: service_shed_total ({shed_total}) does not cover the \
             {rejections} rejections seen on the wire"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The problem every capacity-ramp request carries: a pool variant no
/// tenant trace ever draws (traces sample `0..problem_pool`), so the first
/// solve is cold and every paced request after the pre-warm is a cache hit.
const CAPACITY_VARIANT: usize = 7_777;
/// Parallel connections the paced load is spread over.
const CAPACITY_CLIENTS: usize = 4;
/// Rate of the first ramp step (doubles each sustained step).
const CAPACITY_START_RPS: f64 = 50.0;
/// Ramp ceiling — far above what one host sustains; the closed loop breaks
/// out long before this (the 80% achieved-rate check trips once pacing
/// can't keep up).
const CAPACITY_MAX_STEPS: usize = 14;

/// One measured step of the capacity ramp.
#[derive(Debug, Clone, Copy)]
struct CapacityStep {
    offered_rps: f64,
    achieved_rps: f64,
    p50: Duration,
    p95: Duration,
    requests: usize,
}

impl CapacityStep {
    /// Whether the daemon sustained the offered rate: the p95 round trip
    /// stayed under the bound and at least 80% of the offered rate was
    /// actually achieved (pacing that falls behind means saturation).
    fn sustained(&self, bound: Duration) -> bool {
        self.p95 <= bound && self.achieved_rps >= 0.8 * self.offered_rps
    }
}

/// Offers warm cache-hit `synthesize` round trips at `offered_rps` for
/// roughly `window`, paced across [`CAPACITY_CLIENTS`] connections (one
/// in-flight request per connection; a sender that falls behind its slot
/// schedule sends immediately, which is what drags the achieved rate down
/// at saturation).
fn capacity_step(addr: SocketAddr, offered_rps: f64, window: Duration) -> CapacityStep {
    let clients = CAPACITY_CLIENTS;
    let per_client = ((offered_rps * window.as_secs_f64() / clients as f64).ceil() as usize).max(2);
    let interval = Duration::from_secs_f64(clients as f64 / offered_rps);
    let latencies = Mutex::new(Vec::with_capacity(per_client * clients));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let latencies = &latencies;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect for capacity");
                let _ = stream.set_nodelay(true);
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                let mut line = Request {
                    id: 50_000 + c as i64,
                    trace: None,
                    body: RequestBody::Synthesize {
                        problem: pool_problem(CAPACITY_VARIANT),
                        config: None,
                        backend: Backend::Auto,
                    },
                }
                .to_line();
                line.push('\n');
                let mut reply = String::new();
                // One unmeasured warm-up round trip: a fresh connection's
                // first request pays the daemon's accept-poll latency
                // (up to ~25 ms), which is connection setup, not serving
                // capacity.
                writer.write_all(line.as_bytes()).expect("send warm-up");
                reader.read_line(&mut reply).expect("read warm-up");
                let t0 = Instant::now();
                let mut local = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let due = t0 + interval.mul_f64(i as f64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let sent = Instant::now();
                    writer.write_all(line.as_bytes()).expect("send request");
                    reply.clear();
                    reader.read_line(&mut reply).expect("read response");
                    let response = Response::parse_line(&reply).expect("parse response");
                    assert!(
                        response.outcome.is_ok(),
                        "capacity-ramp synthesize failed: {reply}"
                    );
                    local.push(sent.elapsed());
                }
                latencies.lock().expect("latency lock").extend(local);
            });
        }
    });
    let elapsed = start.elapsed();
    let mut latencies = latencies.into_inner().expect("latency lock");
    latencies.sort_unstable();
    CapacityStep {
        offered_rps,
        achieved_rps: latencies.len() as f64 / elapsed.as_secs_f64(),
        p50: percentile(&latencies, 0.5),
        p95: percentile(&latencies, 0.95),
        requests: latencies.len(),
    }
}

/// The closed-loop capacity ramp: doubles the offered rate until a step
/// breaches the p95 `bound` or falls under 80% of its offered rate.
/// Returns every measured step plus the last *sustained* one (`None` when
/// even the first step breached).
fn run_capacity(
    addr: SocketAddr,
    bound: Duration,
    window: Duration,
) -> (Vec<CapacityStep>, Option<CapacityStep>) {
    // Pre-warm: pay the one cold solve now so the paced phase measures the
    // serving path, not the solver.
    let warm = round_trip(
        addr,
        &Request {
            id: 49_999,
            trace: None,
            body: RequestBody::Synthesize {
                problem: pool_problem(CAPACITY_VARIANT),
                config: None,
                backend: Backend::Auto,
            },
        },
    );
    assert!(
        warm.is_some_and(|r| r.outcome.is_ok()),
        "capacity pre-warm solve failed"
    );
    let mut steps = Vec::new();
    let mut sustained = None;
    let mut rate = CAPACITY_START_RPS;
    for _ in 0..CAPACITY_MAX_STEPS {
        let step = capacity_step(addr, rate, window);
        let ok = step.sustained(bound);
        eprintln!(
            "capacity: offered {:>8.0} rps -> achieved {:>8.0} rps, \
             p50 {:>7.0}us p95 {:>7.0}us ({} requests) {}",
            step.offered_rps,
            step.achieved_rps,
            micros(step.p50),
            micros(step.p95),
            step.requests,
            if ok { "sustained" } else { "BREACH" },
        );
        steps.push(step);
        if !ok {
            break;
        }
        sustained = Some(step);
        rate *= 2.0;
    }
    (steps, sustained)
}

fn run(addr: SocketAddr, options: &Options) -> (Measurements, Duration, Json) {
    let scenario = ServiceScenario {
        tenants: options.tenants,
        events_per_tenant: options.events,
        synthesize_every: 4,
        problem_pool: 3,
        burst: options.burst,
        seed: options.seed,
    };
    let traces = service_trace(&scenario);
    // Online events delivered (batch members counted individually) — the
    // scenario's stream count, invariant under `--burst` grouping.
    let streams: usize = traces.iter().map(TenantTrace::event_count).sum();
    let totals = Mutex::new(Measurements::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for trace in &traces {
            let totals = &totals;
            scope.spawn(move || drive_tenant(trace, addr, totals));
        }
    });
    let wall = start.elapsed();
    let mut m = totals.into_inner().expect("measurement lock");
    m.events.sort_unstable();
    m.synth_cold.sort_unstable();
    m.synth_hit.sort_unstable();
    m.admin.sort_unstable();

    let requests = m.total();
    let throughput = requests as f64 / wall.as_secs_f64();
    let cold_median = percentile(&m.synth_cold, 0.5);
    let hit_median = percentile(&m.synth_hit, 0.5);
    let speedup = if hit_median > Duration::ZERO {
        micros(cold_median) / micros(hit_median)
    } else {
        0.0
    };
    let json = Json::obj([
        ("figure", Json::from("service_throughput")),
        ("tenants", Json::from(options.tenants)),
        ("streams", Json::from(streams)),
        ("requests", Json::from(requests)),
        ("errors", Json::from(m.errors)),
        ("wall_seconds", Json::Float(wall.as_secs_f64())),
        ("throughput_rps", Json::Float(throughput)),
        (
            "event_p50_us",
            Json::Float(micros(percentile(&m.events, 0.5))),
        ),
        (
            "event_p95_us",
            Json::Float(micros(percentile(&m.events, 0.95))),
        ),
        (
            "event_max_us",
            Json::Float(micros(m.events.last().copied().unwrap_or_default())),
        ),
        ("synth_cold", Json::from(m.synth_cold.len())),
        ("synth_cold_p50_us", Json::Float(micros(cold_median))),
        ("cache_hits", Json::from(m.synth_hit.len())),
        ("cache_hit_p50_us", Json::Float(micros(hit_median))),
        ("cache_speedup", Json::Float(speedup)),
    ]);
    (m, wall, json)
}

/// Named in-process server threads (shards and, with `--shards`, the router)
/// joined after shutdown to confirm a clean drain.
type ServeHandles = Vec<(String, JoinHandle<std::io::Result<()>>)>;

fn main() -> ExitCode {
    let options = parse_options();
    if options.trace_out.is_some() {
        tsn_telemetry::set_enabled(true);
    }
    if options.overload {
        return run_overload(&options);
    }

    // Either connect to an external daemon, spawn one in-process, or — with
    // `--shards N` — spawn an in-process fleet behind a `tsn_router`
    // front-end and drive everything through the router.
    let (addr, in_process): (SocketAddr, ServeHandles) = match &options.connect {
        Some(target) => {
            if options.shards > 1 {
                eprintln!("fig_service: --shards spawns an in-process fleet; with --connect the fleet layout belongs to the external deployment");
                return ExitCode::FAILURE;
            }
            let addr: SocketAddr = match target.parse() {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("fig_service: bad --connect address {target:?}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (addr, Vec::new())
        }
        None => {
            // At least four pool workers even on small hosts: the
            // coalescing burst needs concurrent identical requests to
            // *overlap* inside the service, which a single worker would
            // serialize away.
            let workers = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .max(4);
            let mut handles = Vec::new();
            let mut shard_addrs = Vec::with_capacity(options.shards);
            for i in 0..options.shards {
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind shard port");
                shard_addrs.push(listener.local_addr().expect("shard addr").to_string());
                let service = Arc::new(Service::new(ServiceConfig {
                    workers,
                    shard_id: i as u64,
                    ..ServiceConfig::default()
                }));
                let name = if options.shards == 1 {
                    "daemon".to_string()
                } else {
                    format!("shard {i}")
                };
                handles.push((name, std::thread::spawn(move || serve(&service, listener))));
            }
            if options.shards == 1 {
                // One daemon: drive it directly, no router in the path.
                let addr: SocketAddr = shard_addrs[0].parse().expect("shard addr");
                (addr, handles)
            } else {
                let router = Arc::new(
                    Router::new(RouterConfig {
                        shards: shard_addrs,
                    })
                    .expect("router fleet config"),
                );
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind router port");
                let addr = listener.local_addr().expect("router addr");
                handles.push((
                    "router".to_string(),
                    std::thread::spawn(move || tsn_router::serve(&router, listener)),
                ));
                (addr, handles)
            }
        }
    };

    let (measurements, wall, mut json) = run(addr, &options);

    // Rejection probe: a request for a tenant that was never opened must
    // fail with a typed error — and leaves a `warn` event in the daemon's
    // structured log (the CI smoke job asserts on both). Deliberately a
    // separate round trip, outside `measurements.errors`, which the mixed
    // run requires to be zero.
    let probe = round_trip(
        addr,
        &Request {
            id: 999_999,
            trace: None,
            body: RequestBody::TenantState {
                tenant: "no-such-tenant".into(),
            },
        },
    );
    if probe.as_ref().is_none_or(|r| r.outcome.is_ok()) {
        eprintln!("fig_service: rejection probe did not draw an error response: {probe:?}");
        return ExitCode::FAILURE;
    }

    // The coalescing burst (bursty runs only): identical cold synthesize
    // requests from parallel connections must share one daemon-side solve.
    let coalesce_rounds = (options.burst > 1).then(|| coalesce_burst(addr, 6, 8));

    // The closed-loop capacity ramp, against the still-warm daemon.
    let capacity = options.capacity.then(|| {
        let bound = Duration::from_micros(options.capacity_bound_us);
        let window = Duration::from_secs_f64(if options.full { 2.0 } else { 1.0 });
        run_capacity(addr, bound, window)
    });

    // Ask the daemon for its own view of the cache — plus its telemetry
    // registry and health introspection — before shutting down.
    let (stats, expositions, health) =
        {
            let stream = TcpStream::connect(addr).expect("connect for stats");
            let _ = stream.set_nodelay(true);
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let mut ask = |body: RequestBody| -> Option<Json> {
                let mut line = Request {
                    id: 0,
                    trace: None,
                    body,
                }
                .to_line();
                line.push('\n');
                writer.write_all(line.as_bytes()).ok()?;
                let mut reply = String::new();
                reader.read_line(&mut reply).ok()?;
                Response::parse_line(&reply).ok()?.outcome.ok()
            };
            let stats = ask(RequestBody::Stats);
            // A single daemon answers `metrics` with one exposition string; the
            // router answers with a per-shard array of them. Collect whichever
            // shape came back — the JSON fold below sums counters across the
            // list and takes percentiles from the worst shard.
            let mut expositions: Vec<String> =
                ask(RequestBody::Metrics).map_or(Vec::new(), |payload| {
                    match payload.get("exposition").and_then(Json::as_str) {
                        Some(exposition) => vec![exposition.to_string()],
                        None => payload.get("shards").and_then(Json::as_arr).map_or(
                            Vec::new(),
                            |entries| {
                                entries
                                    .iter()
                                    .filter_map(|e| e.get("exposition").and_then(Json::as_str))
                                    .map(str::to_string)
                                    .collect()
                            },
                        ),
                    }
                });
            // An in-process fleet shares this process's one global telemetry
            // registry, so every shard's exposition is the same text and
            // summing would double-count; keep one copy. External shards
            // (`--connect` to a real router) are separate processes with
            // disjoint registries, where the sum is the fleet total.
            if options.connect.is_none() {
                expositions.truncate(1);
            }
            let health = ask(RequestBody::Health);
            if options.shutdown {
                let _ = ask(RequestBody::Shutdown);
            }
            (stats, expositions, health)
        };
    // One `shutdown` request suffices for the whole in-process fabric: the
    // router broadcasts it to every shard, so every accept loop unwinds.
    if options.shutdown {
        for (name, handle) in in_process {
            match handle.join() {
                Ok(Ok(())) => eprintln!("in-process {name} drained cleanly"),
                other => {
                    eprintln!("fig_service: in-process {name} did not exit cleanly: {other:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // Daemon-side counters and burst results join the JSON artifact (the
    // client-side keys keep their names; daemon counters get a prefix).
    if let Json::Obj(pairs) = &mut json {
        pairs.push(("burst".to_string(), Json::from(options.burst)));
        // How many daemons served the run. A router's stats payload is the
        // fan-out aggregate and carries the active fleet size and the
        // warm-session migration counter — trust it over the local flag, so
        // `--connect` against an external router reports the real fleet.
        let shards_served = stats
            .as_ref()
            .and_then(|s| s.get("shards"))
            .and_then(Json::as_i64)
            .unwrap_or(options.shards as i64);
        pairs.push(("shards".to_string(), Json::Int(shards_served)));
        if let Some(migrations) = stats.as_ref().and_then(|s| s.get("migrations")) {
            pairs.push(("migrations".to_string(), migrations.clone()));
        }
        if let Some(result) = &coalesce_rounds {
            pairs.push((
                "coalesce_burst_rounds".to_string(),
                Json::Int(result.map_or(-1, |r| r as i64)),
            ));
        }
        if let Some(stats) = &stats {
            for key in ["solves", "coalesced_misses", "backlog_batches"] {
                pairs.push((
                    format!("daemon_{key}"),
                    stats.get(key).cloned().unwrap_or(Json::Int(-1)),
                ));
            }
        }
        // Health introspection over the same TCP channel: uptime and worker
        // occupancy prove the daemon self-reports liveness, and the log-tail
        // length that the health payload actually carries recent events
        // (all -1 if the request failed — the smoke job asserts them sane).
        // A single daemon answers with one flat payload; the router wraps
        // every shard's payload in a `shards` array, so fold those: summed
        // workers, the youngest shard's uptime, and the longest log tail
        // (the tail rings are capped at 16 entries each, and an in-process
        // fleet shares one global ring — a sum would double-count it).
        let healths: Vec<&Json> = match health.as_ref() {
            Some(h) if h.get("uptime_us").is_some() => vec![h],
            Some(h) => h
                .get("shards")
                .and_then(Json::as_arr)
                .map_or(Vec::new(), |entries| {
                    entries.iter().filter_map(|e| e.get("health")).collect()
                }),
            None => Vec::new(),
        };
        let hfold = |key: &str, fold: fn(i64, i64) -> i64| {
            healths
                .iter()
                .filter_map(|h| h.get(key).and_then(Json::as_i64))
                .reduce(fold)
                .map_or(Json::Int(-1), Json::Int)
        };
        pairs.push(("daemon_uptime_us".to_string(), hfold("uptime_us", i64::min)));
        pairs.push((
            "daemon_workers".to_string(),
            hfold("workers", i64::saturating_add),
        ));
        pairs.push((
            "daemon_health_log_tail".to_string(),
            healths
                .iter()
                .filter_map(|h| h.get("recent_log").and_then(Json::as_arr))
                .map(|events| events.len())
                .reduce(usize::max)
                .map_or(Json::Int(-1), |n| Json::Int(n as i64)),
        ));
        // Daemon-side telemetry: total requests, solve-histogram count and
        // the pool queue-wait percentiles (all -1 if the metrics request
        // failed — the smoke job asserts them nonzero). Counters sum across
        // the fleet; a quantile cannot be merged across histograms, so the
        // fleet value is the worst shard's — the conservative read.
        let count = |name: &str| {
            expositions
                .iter()
                .filter_map(|expo| tsn_telemetry::sample_value(expo, name))
                .map(|v| v as i64)
                .reduce(i64::saturating_add)
                .map_or(Json::Int(-1), Json::Int)
        };
        let quantile_us = |name: &str, q: f64| {
            expositions
                .iter()
                .filter_map(|expo| tsn_telemetry::histogram_quantile(expo, name, q))
                .reduce(f64::max)
                .map_or(Json::Int(-1), |secs| Json::Float(secs * 1e6))
        };
        pairs.push(("daemon_requests_total".to_string(), count("requests_total")));
        pairs.push((
            "daemon_solve_seconds_count".to_string(),
            count("solve_seconds_count"),
        ));
        pairs.push((
            "queue_wait_p50_us".to_string(),
            quantile_us("service_queue_wait_seconds", 0.5),
        ));
        pairs.push((
            "queue_wait_p95_us".to_string(),
            quantile_us("service_queue_wait_seconds", 0.95),
        ));
        // How many per-tenant labeled request series the daemon exposes —
        // the dimensional-telemetry non-vacuity signal (one per tenant that
        // ever sent a tenant-scoped request, `other` included if the
        // cardinality cap folded). Summing across shards is exact: the
        // router homes each tenant on one shard, so the series are disjoint.
        let tenant_series: usize = expositions
            .iter()
            .map(|expo| {
                tsn_telemetry::samples(expo, "service_tenant_requests_total")
                    .iter()
                    .filter(|s| s.label("tenant").is_some())
                    .count()
            })
            .sum();
        pairs.push(("tenant_series".to_string(), Json::from(tenant_series)));
        if let Some((steps, sustained)) = &capacity {
            let (max_rps, p50, p95) = sustained.map_or((0.0, 0.0, 0.0), |s| {
                (s.achieved_rps, micros(s.p50), micros(s.p95))
            });
            pairs.push(("capacity_max_rps".to_string(), Json::Float(max_rps)));
            pairs.push(("capacity_p50_us".to_string(), Json::Float(p50)));
            pairs.push(("capacity_p95_us".to_string(), Json::Float(p95)));
            pairs.push((
                "capacity_p95_bound_us".to_string(),
                Json::Int(options.capacity_bound_us as i64),
            ));
            pairs.push(("capacity_steps".to_string(), Json::Int(steps.len() as i64)));
        }
    }

    // Human-readable summary.
    eprintln!(
        "{} requests over {} tenants in {:.2}s ({:.1} req/s), {} cache hits",
        measurements.total(),
        options.tenants,
        wall.as_secs_f64(),
        measurements.total() as f64 / wall.as_secs_f64(),
        measurements.synth_hit.len(),
    );
    print_table(
        "Service throughput — mixed multi-tenant load \
         (events/admin: client round trip; synth: daemon service time)",
        &["class", "count", "p50 (us)", "p95 (us)", "max (us)"],
        &[
            ("events", &measurements.events),
            ("synth cold", &measurements.synth_cold),
            ("synth hit", &measurements.synth_hit),
            ("admin", &measurements.admin),
        ]
        .iter()
        .map(|(name, lat)| {
            vec![
                (*name).to_string(),
                lat.len().to_string(),
                format!("{:.0}", micros(percentile(lat, 0.5))),
                format!("{:.0}", micros(percentile(lat, 0.95))),
                format!("{:.0}", micros(lat.last().copied().unwrap_or_default())),
            ]
        })
        .collect::<Vec<_>>(),
    );
    if let Some(stats) = &stats {
        eprintln!("daemon stats: {stats}");
    }
    println!("JSON: {json}");
    if let Some(path) = &options.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("fig_service: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &options.trace_out {
        if let Err(e) = tsn_telemetry::dump_chrome_trace(path) {
            eprintln!("fig_service: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {path}");
    }

    // The service perf-trajectory line (`BENCH_service.json`): append-only,
    // one flat line per capacity run — the same convention as
    // `BENCH_scale.json`, gated by the heavy CI job.
    if let Some(path) = &options.bench_json {
        match &capacity {
            None => eprintln!("fig_service: --bench-json needs --capacity, nothing appended"),
            Some((steps, sustained)) => {
                let (max_rps, p50_us, p95_us) = sustained.map_or((0.0, 0.0, 0.0), |s| {
                    (s.achieved_rps, micros(s.p50), micros(s.p95))
                });
                let capacity_requests: usize = steps.iter().map(|s| s.requests).sum();
                let grab = |key: &str| json.get(key).and_then(Json::as_i64).unwrap_or(-1);
                // `shards` is new to the line; older committed lines lack
                // it and readers must default it to 1 (append-only format).
                let line = Json::obj([
                    ("streams", Json::Int(grab("streams"))),
                    ("tenants", Json::from(options.tenants)),
                    ("shards", Json::Int(grab("shards").max(1))),
                    (
                        "requests",
                        Json::Int(measurements.total() as i64 + capacity_requests as i64),
                    ),
                    ("max_rps", Json::Float(max_rps)),
                    ("p50_us", Json::Float(p50_us)),
                    ("p95_us", Json::Float(p95_us)),
                    ("p95_bound_us", Json::Int(options.capacity_bound_us as i64)),
                    ("tenant_series", Json::Int(grab("tenant_series"))),
                ]);
                use std::fs::OpenOptions;
                let result = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| writeln!(f, "{line}"));
                match result {
                    Ok(()) => println!("appended 1 line to {path}"),
                    Err(e) => {
                        eprintln!("fig_service: could not append to {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }

    // Acceptance checks: a mixed run must be error-free (tenant traces
    // never produce protocol errors) and cache hits must beat cold solves.
    if measurements.errors > 0 {
        eprintln!(
            "fig_service: {} unexpected error responses",
            measurements.errors
        );
        return ExitCode::FAILURE;
    }
    if coalesce_rounds == Some(None) {
        eprintln!(
            "fig_service: concurrent identical cold synthesize requests never \
             coalesced onto one solve"
        );
        return ExitCode::FAILURE;
    }
    // A capacity ramp that cannot sustain even its first (50 rps) step
    // means the serving path is broken, not slow.
    if matches!(&capacity, Some((_, None))) {
        eprintln!(
            "fig_service: the daemon sustained no capacity step at all \
             (p95 bound {}us)",
            options.capacity_bound_us
        );
        return ExitCode::FAILURE;
    }
    // The comparison needs both classes: a re-run against an already-warm
    // external daemon can see zero cold solves, which proves nothing
    // against the cache (and an empty percentile would read as 0).
    let cold_median = percentile(&measurements.synth_cold, 0.5);
    let hit_median = percentile(&measurements.synth_hit, 0.5);
    if !measurements.synth_hit.is_empty()
        && !measurements.synth_cold.is_empty()
        && hit_median >= cold_median
    {
        eprintln!(
            "fig_service: cache hits (p50 {:.0}us) are not faster than cold solves (p50 {:.0}us)",
            micros(hit_median),
            micros(cold_median),
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
