//! Figure 7: scalability with the size of the network.
//!
//! Synthesis time for a fixed workload (10 control applications, 45 messages
//! per hyper-period) on Erdős–Rényi topologies with a growing number of
//! Ethernet switches.

use tsn_bench::{print_table, run_point, seconds, sweep_config, HarnessOptions};
use tsn_workload::network_size_problem;

fn main() {
    let options = HarnessOptions::from_args();
    let (switch_counts, seeds): (Vec<usize>, u64) = if options.full {
        ((10..=45).step_by(5).collect(), 10)
    } else {
        (vec![10, 20, 30], 3)
    };
    let routes = 3;
    let stages = 5;

    let mut rows = Vec::new();
    for &switches in &switch_counts {
        let mut times = Vec::new();
        let mut solved = 0usize;
        for seed in 0..seeds {
            let problem = network_size_problem(switches, seed).expect("scenario generation");
            let point = run_point(
                &problem,
                sweep_config(routes, stages, options.stage_timeout, true),
            );
            if point.solved {
                solved += 1;
            }
            times.push(point.synthesis_seconds);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let max = times.iter().cloned().fold(0.0, f64::max);
        eprintln!("switches={switches}: mean {mean:.2}s solved {solved}/{seeds}");
        rows.push(vec![
            switches.to_string(),
            seconds(mean),
            seconds(max),
            format!("{solved}/{seeds}"),
        ]);
    }
    print_table(
        "Figure 7 — synthesis time vs. number of Ethernet switches (45 messages, routes = 3, stages = 5)",
        &["switches", "mean time (s)", "max time (s)", "solved"],
        &rows,
    );
}
