//! Table I: the automotive case study.
//!
//! Runs the reconstructed General-Motors-like scenario (20 control
//! applications, 8 switches, 106 messages in a 200 ms hyper-period,
//! `ld = 1.2 ms`, `sd = 5 µs`) twice: once with the stability-aware
//! synthesis (3 alternative routes, 5 stages) and once with the
//! deadline-only baseline, and prints the per-application maximum
//! end-to-end delay, latency and jitter of the five applications published
//! in the paper, plus the number of worst-case-stable applications of both
//! approaches.

use tsn_bench::{millis, print_table, HarnessOptions};
use tsn_net::Time;
use tsn_synthesis::{ConstraintMode, RouteStrategy, SynthesisConfig, Synthesizer};
use tsn_workload::{automotive_case_study, TABLE1_APPS};

fn main() {
    let options = HarnessOptions::from_args();
    let study = automotive_case_study().expect("case study construction");
    let problem = &study.problem;
    println!(
        "automotive case study: {} applications, {} messages in a {} hyper-period",
        problem.applications().len(),
        problem.message_count(),
        problem.hyperperiod()
    );

    let stability_config = SynthesisConfig {
        route_strategy: RouteStrategy::KShortest(3),
        stages: 5,
        mode: ConstraintMode::StabilityAware {
            granularity: Time::from_millis(1),
        },
        timeout_per_stage: Some(options.stage_timeout),
        ..SynthesisConfig::default()
    };
    let deadline_config = stability_config.deadline_baseline();

    let stability = Synthesizer::new(stability_config)
        .synthesize(problem)
        .expect("stability-aware synthesis of the case study");
    eprintln!(
        "stability-aware synthesis: {:.1} s, {} / {} applications stable",
        stability.total_time.as_secs_f64(),
        stability.stable_applications,
        problem.applications().len()
    );
    let deadline = Synthesizer::new(deadline_config)
        .synthesize(problem)
        .expect("deadline-only synthesis of the case study");
    eprintln!(
        "deadline-only synthesis:   {:.1} s, {} / {} applications stable",
        deadline.total_time.as_secs_f64(),
        deadline.stable_applications,
        problem.applications().len()
    );

    let mut rows = Vec::new();
    for (pos, &app_idx) in study.table1_apps.iter().enumerate() {
        let (period_ms, alpha, beta_ms) = TABLE1_APPS[pos];
        let sm = &stability.app_metrics[app_idx];
        let dm = &deadline.app_metrics[app_idx];
        let deadline_stable = deadline.stability_margins[app_idx] >= 0.0;
        rows.push(vec![
            (pos + 1).to_string(),
            period_ms.to_string(),
            format!("{alpha:.2}"),
            format!("{beta_ms:.2}"),
            millis(sm.max_end_to_end),
            millis(sm.latency),
            millis(sm.jitter),
            millis(dm.max_end_to_end),
            millis(dm.latency),
            millis(dm.jitter),
            if deadline_stable { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        "Table I — stability-aware vs. deadline-only routing and scheduling",
        &[
            "app",
            "period (ms)",
            "alpha",
            "beta (ms)",
            "SA max e2e (ms)",
            "SA latency (ms)",
            "SA jitter (ms)",
            "DL max e2e (ms)",
            "DL latency (ms)",
            "DL jitter (ms)",
            "DL stable?",
        ],
        &rows,
    );

    println!();
    println!(
        "stability-aware: {} / {} applications worst-case stable (paper: 20 / 20)",
        stability.stable_applications,
        problem.applications().len()
    );
    println!(
        "deadline-only:   {} / {} applications worst-case stable (paper: 14 / 20)",
        deadline.stable_applications,
        problem.applications().len()
    );
    println!(
        "stability-aware synthesis time: {:.1} s (paper: 112 s on a 2.67 GHz Xeon with Z3)",
        stability.total_time.as_secs_f64()
    );
}
