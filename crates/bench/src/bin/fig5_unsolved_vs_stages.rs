//! Figure 5: percentage of problems left unsolved by the incremental
//! synthesis heuristic as a function of the number of stages.
//!
//! Because the incremental heuristic only explores part of the solution
//! space, more stages mean faster synthesis but a higher chance of missing a
//! feasible solution. Reduced sweep by default; `--full` uses the paper's 60
//! problem instances and stages 2..14.

use tsn_bench::{print_table, run_point, sweep_config, HarnessOptions};
use tsn_workload::{scalability_problem, ScalabilityScenario};

fn main() {
    let options = HarnessOptions::from_args();
    let (stage_counts, seeds, message_counts): (Vec<usize>, u64, Vec<usize>) = if options.full {
        (
            (2..=14).step_by(2).collect(),
            10,
            vec![20, 40, 60, 80, 100, 60],
        )
    } else {
        (vec![2, 4, 6, 8], 4, vec![20, 40])
    };
    let routes = 4;

    let mut rows = Vec::new();
    for &stages in &stage_counts {
        let mut unsolved = 0usize;
        let mut total = 0usize;
        for seed in 0..seeds {
            for &messages in &message_counts {
                let problem = scalability_problem(ScalabilityScenario {
                    messages,
                    applications: 10,
                    switches: 15,
                    seed,
                })
                .expect("scenario generation");
                let point = run_point(
                    &problem,
                    sweep_config(routes, stages, options.stage_timeout, true),
                );
                total += 1;
                if !point.solved {
                    unsolved += 1;
                }
            }
        }
        let percent = 100.0 * unsolved as f64 / total as f64;
        eprintln!("stages={stages}: {unsolved}/{total} unsolved ({percent:.1}%)");
        rows.push(vec![
            stages.to_string(),
            format!("{unsolved}/{total}"),
            format!("{percent:.1}"),
        ]);
    }
    print_table(
        "Figure 5 — unsolved problems vs. number of stages (routes = 4)",
        &["stages", "unsolved", "unsolved (%)"],
        &rows,
    );
}
