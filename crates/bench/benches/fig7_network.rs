//! Criterion benchmark behind Figure 7: synthesis time as the switch fabric
//! grows, with the workload held constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tsn_bench::sweep_config;
use tsn_synthesis::Synthesizer;
use tsn_workload::network_size_problem;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_network");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for &switches in &[10usize, 20, 30] {
        let problem = network_size_problem(switches, 1).expect("scenario");
        let config = sweep_config(3, 5, Duration::from_secs(30), true);
        group.bench_with_input(BenchmarkId::new("switches", switches), &switches, |b, _| {
            b.iter(|| {
                let _ = Synthesizer::new(config.clone()).synthesize(&problem);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
