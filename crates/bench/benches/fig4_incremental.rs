//! Criterion benchmark behind Figure 4: synthesis time of one representative
//! scalability instance for different numbers of incremental stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tsn_bench::sweep_config;
use tsn_synthesis::Synthesizer;
use tsn_workload::{scalability_problem, ScalabilityScenario};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_incremental");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for &stages in &[1usize, 3, 5] {
        let problem = scalability_problem(ScalabilityScenario {
            messages: 20,
            applications: 10,
            switches: 15,
            seed: 1,
        })
        .expect("scenario");
        let config = sweep_config(4, stages, Duration::from_secs(30), true);
        group.bench_with_input(BenchmarkId::new("stages", stages), &stages, |b, _| {
            b.iter(|| {
                Synthesizer::new(config.clone())
                    .synthesize(&problem)
                    .expect("solvable instance")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
