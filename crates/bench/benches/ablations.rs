//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! stability-grid granularity and the effect of the incremental heuristic on
//! the solver workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tsn_net::Time;
use tsn_synthesis::{ConstraintMode, RouteStrategy, SynthesisConfig, Synthesizer};
use tsn_workload::{scalability_problem, ScalabilityScenario};

fn granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_stability_grid");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let problem = scalability_problem(ScalabilityScenario {
        messages: 20,
        applications: 10,
        switches: 15,
        seed: 5,
    })
    .expect("scenario");
    for &granularity_us in &[250i64, 1000, 4000] {
        let config = SynthesisConfig {
            route_strategy: RouteStrategy::KShortest(3),
            stages: 5,
            mode: ConstraintMode::StabilityAware {
                granularity: Time::from_micros(granularity_us),
            },
            timeout_per_stage: Some(Duration::from_secs(30)),
            ..SynthesisConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("granularity_us", granularity_us),
            &granularity_us,
            |b, _| {
                b.iter(|| {
                    let _ = Synthesizer::new(config.clone()).synthesize(&problem);
                })
            },
        );
    }
    group.finish();
}

fn verification_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_verification");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let problem = scalability_problem(ScalabilityScenario {
        messages: 20,
        applications: 10,
        switches: 15,
        seed: 6,
    })
    .expect("scenario");
    for (label, verify) in [("with_verifier", true), ("without_verifier", false)] {
        let config = SynthesisConfig {
            route_strategy: RouteStrategy::KShortest(3),
            stages: 5,
            mode: ConstraintMode::StabilityAware {
                granularity: Time::from_millis(1),
            },
            timeout_per_stage: Some(Duration::from_secs(30)),
            verify,
            ..SynthesisConfig::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let _ = Synthesizer::new(config.clone()).synthesize(&problem);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, granularity, verification_overhead);
criterion_main!(benches);
