//! Criterion benchmark behind Figure 3: stability-curve generation and
//! piecewise-linear bound fitting for the benchmark plants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tsn_control::{CurveOptions, PiecewiseLinearBound, Plant, StabilityCurve};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("stability_curve");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let plants = [
        ("dc_servo", Plant::dc_servo()),
        ("ball_and_beam", Plant::ball_and_beam()),
    ];
    for (name, plant) in plants {
        group.bench_with_input(BenchmarkId::new("curve", name), &plant, |b, plant| {
            b.iter(|| {
                let curve = StabilityCurve::compute(plant, 0.006, CurveOptions::default())
                    .expect("stable nominal loop");
                PiecewiseLinearBound::from_curve(&curve, 3).expect("valid bound")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
