//! Criterion benchmark behind Table I: stability-aware vs. deadline-only
//! synthesis of a scaled-down automotive scenario (the full 106-message case
//! study is exercised by the `table1_automotive` binary instead, because one
//! run takes tens of seconds).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tsn_bench::sweep_config;
use tsn_control::PiecewiseLinearBound;
use tsn_net::Time;
use tsn_synthesis::{SynthesisProblem, Synthesizer};
use tsn_workload::automotive_case_study;

/// The first `keep` applications of the automotive case study.
fn scaled_down(keep: usize) -> SynthesisProblem {
    let study = automotive_case_study().expect("case study");
    let full = study.problem;
    let mut problem = SynthesisProblem::new(full.topology().clone(), full.forwarding_delay());
    for app in full.applications().iter().take(keep) {
        problem
            .add_application(
                app.name.clone(),
                app.sensor,
                app.controller,
                app.period,
                app.frame_bytes,
                PiecewiseLinearBound::from_segments(app.stability.segments().to_vec())
                    .expect("bound is valid"),
            )
            .expect("application is valid");
    }
    problem
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_automotive");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let problem = scaled_down(6);
    // Keep the automotive 10 Mbit/s links but the reduced application count.
    assert!(problem.hyperperiod() <= Time::from_millis(200));
    for (label, stability) in [("stability_aware", true), ("deadline_only", false)] {
        let config = sweep_config(3, 5, Duration::from_secs(60), stability);
        group.bench_function(label, |b| {
            b.iter(|| {
                Synthesizer::new(config.clone())
                    .synthesize(&problem)
                    .expect("scaled-down case study is solvable")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
