//! Criterion benchmark behind Figure 6: synthesis time for different route
//! subset sizes at a fixed number of stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tsn_bench::sweep_config;
use tsn_synthesis::Synthesizer;
use tsn_workload::{scalability_problem, ScalabilityScenario};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_routes");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for &routes in &[1usize, 3, 5] {
        let problem = scalability_problem(ScalabilityScenario {
            messages: 20,
            applications: 10,
            switches: 15,
            seed: 2,
        })
        .expect("scenario");
        let config = sweep_config(routes, 5, Duration::from_secs(30), true);
        group.bench_with_input(BenchmarkId::new("routes", routes), &routes, |b, _| {
            b.iter(|| {
                // Instances with a single route may be unsatisfiable — that is
                // exactly the effect Figure 6 documents — so both outcomes are
                // accepted here.
                let _ = Synthesizer::new(config.clone()).synthesize(&problem);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
