//! Phase-by-phase timing probe for the partitioned synthesizer.
//!
//! Usage: `cargo run --release -p tsn_scale --example scale_probe -- [streams] [target]`
//!
//! Prints the partition plan, per-partition solve-time distribution, repair
//! rounds and total time for one generated fat-tree instance — the first
//! thing to run when large-scale solve times regress.

use std::time::Duration;

use tsn_scale::{ScaleConfig, ScaleSynthesizer};
use tsn_workload::{large_scale_problem, LargeScaleScenario, LargeTopology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let streams: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(500);
    let target: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(16);
    let scenario = LargeScaleScenario {
        topology: LargeTopology::FatTree,
        switches: 80,
        streams,
        seed: 1,
        fast_stream_percent: 12,
    };
    let problem = large_scale_problem(&scenario).expect("generator instance");
    println!(
        "instance: {} streams, {} messages, {} switches",
        problem.applications().len(),
        problem.message_count(),
        problem.topology().switches().len()
    );
    let config = ScaleConfig {
        synthesis: tsn_synthesis::SynthesisConfig {
            timeout_per_stage: Some(Duration::from_secs(120)),
            ..ScaleConfig::default().synthesis
        },
        target_apps_per_partition: target,
        fallback_monolithic: false,
        ..ScaleConfig::default()
    };
    match ScaleSynthesizer::new(config).synthesize(&problem) {
        Ok(report) => {
            let mut times: Vec<f64> = report
                .partitions
                .iter()
                .map(|p| p.totals.solve_time.as_secs_f64())
                .collect();
            times.sort_by(f64::total_cmp);
            let sum: f64 = times.iter().sum();
            println!(
                "partitions: {} (cut {} of {} contention edges), wall {:.2}s, \
                 solve sum {sum:.2}s, min {:.3}s, median {:.3}s, max {:.3}s",
                report.partitions.len(),
                report.cut_edges,
                report.contention_edges,
                report.partition_wall_time.as_secs_f64(),
                times.first().copied().unwrap_or(0.0),
                times.get(times.len() / 2).copied().unwrap_or(0.0),
                times.last().copied().unwrap_or(0.0),
            );
            for repair in &report.repairs {
                println!(
                    "repair round {}: {} conflicting apps ({} pairs), \
                     {} re-solved singly, {} escalated, {:.2}s",
                    repair.round,
                    repair.conflicting_apps,
                    repair.conflict_pairs,
                    repair.resolved_apps,
                    repair.escalated_apps,
                    repair.solve_time.as_secs_f64()
                );
            }
            println!(
                "total {:.2}s on {} threads; stable {}/{}",
                report.report.total_time.as_secs_f64(),
                report.threads,
                report.report.stable_applications,
                report.report.app_metrics.len()
            );
        }
        Err(e) => println!("FAILED: {e}"),
    }
}
