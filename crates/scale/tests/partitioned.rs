//! Acceptance tests for the partitioned parallel synthesizer on generated
//! large-scale instances (debug-sized here; the 500-stream flagship runs in
//! the release-mode heavy suite via `testkit`).

use std::time::Duration;

use tsn_scale::{ScaleConfig, ScaleSynthesizer};
use tsn_synthesis::{Schedule, SynthesisConfig};
use tsn_workload::{large_scale_problem, LargeScaleScenario, LargeTopology};

fn config(target: usize, threads: usize) -> ScaleConfig {
    ScaleConfig {
        synthesis: SynthesisConfig {
            timeout_per_stage: Some(Duration::from_secs(30)),
            ..ScaleConfig::default().synthesis
        },
        target_apps_per_partition: target,
        threads,
        ..ScaleConfig::default()
    }
}

/// One message's identity plus its exact per-link release times.
type MessageTimes = (usize, usize, Vec<(u32, i64)>);

fn schedule_fingerprint(schedule: &Schedule) -> Vec<MessageTimes> {
    schedule
        .messages
        .iter()
        .map(|m| {
            (
                m.message.app,
                m.message.instance,
                m.link_release
                    .iter()
                    .map(|&(l, t)| (l.index() as u32, t.as_nanos()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn partitioned_solve_is_verified_and_splits_work() {
    let scenario = LargeScaleScenario {
        topology: LargeTopology::FatTree,
        switches: 20,
        streams: 24,
        seed: 5,
        fast_stream_percent: 20,
    };
    let problem = large_scale_problem(&scenario).unwrap();
    let report = ScaleSynthesizer::new(config(4, 0))
        .synthesize(&problem)
        .expect("instance must be schedulable");
    assert!(!report.monolithic_fallback, "partitioned path must succeed");
    assert!(report.partitions.len() >= 6, "24 apps at target 4");
    assert_eq!(
        report.report.schedule.messages.len(),
        problem.message_count()
    );
    assert!(report.all_stable());
    // Per-partition stats are populated and the partition apps sum up.
    assert_eq!(
        report.partitions.iter().map(|p| p.apps).sum::<usize>(),
        problem.applications().len()
    );
    assert!(report.partitions.iter().all(|p| p.totals.theory_checks > 0));
    // Stage reports cover partitions plus any repair solves, renumbered.
    for (i, stage) in report.report.stages.iter().enumerate() {
        assert_eq!(stage.stage, i);
    }
}

#[test]
fn thread_count_does_not_change_the_schedule() {
    let scenario = LargeScaleScenario {
        topology: LargeTopology::Grid,
        switches: 16,
        streams: 16,
        seed: 9,
        fast_stream_percent: 25,
    };
    let problem = large_scale_problem(&scenario).unwrap();
    let one = ScaleSynthesizer::new(config(4, 1))
        .synthesize(&problem)
        .expect("solvable with one thread");
    let four = ScaleSynthesizer::new(config(4, 4))
        .synthesize(&problem)
        .expect("solvable with four threads");
    let eight = ScaleSynthesizer::new(config(4, 8))
        .synthesize(&problem)
        .expect("solvable with eight threads");
    let fp = schedule_fingerprint(&one.report.schedule);
    assert_eq!(fp, schedule_fingerprint(&four.report.schedule));
    assert_eq!(fp, schedule_fingerprint(&eight.report.schedule));
    // The plan itself is identical too.
    assert_eq!(one.cut_edges, four.cut_edges);
    assert_eq!(one.partitions.len(), four.partitions.len());
}

#[test]
fn same_seed_reproduces_bit_identical_schedules() {
    let scenario = LargeScaleScenario {
        topology: LargeTopology::Ring,
        switches: 12,
        streams: 12,
        seed: 3,
        fast_stream_percent: 0,
    };
    let problem_a = large_scale_problem(&scenario).unwrap();
    let problem_b = large_scale_problem(&scenario).unwrap();
    let a = ScaleSynthesizer::new(config(3, 2))
        .synthesize(&problem_a)
        .expect("solvable");
    let b = ScaleSynthesizer::new(config(3, 2))
        .synthesize(&problem_b)
        .expect("solvable");
    assert_eq!(
        schedule_fingerprint(&a.report.schedule),
        schedule_fingerprint(&b.report.schedule)
    );
}

#[test]
fn repair_handles_contended_rings() {
    // A small ring with many streams forces heavy cross-partition
    // contention: the repair loop (or, at worst, the monolithic fallback)
    // must still deliver a verified schedule.
    let scenario = LargeScaleScenario {
        topology: LargeTopology::Ring,
        switches: 8,
        streams: 10,
        seed: 21,
        fast_stream_percent: 0,
    };
    let problem = large_scale_problem(&scenario).unwrap();
    let report = ScaleSynthesizer::new(config(2, 0))
        .synthesize(&problem)
        .expect("instance must be schedulable");
    assert_eq!(
        report.report.schedule.messages.len(),
        problem.message_count()
    );
    if !report.monolithic_fallback {
        // When repair ran, its rounds must be recorded consistently. A
        // round may legitimately resolve nothing singly and fix everything
        // via the joint escalation, but never neither.
        for repair in &report.repairs {
            assert!(repair.resolved_apps + repair.escalated_apps >= 1);
            assert!(repair.conflict_pairs >= 1);
        }
    }
}
