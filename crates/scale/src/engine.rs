//! The partitioned parallel synthesizer: per-partition warm-started solves
//! on a scoped thread pool, followed by a conflict-repair loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use tsn_telemetry::Histogram;

use tsn_net::Time;
use tsn_smt::Model;
use tsn_synthesis::{
    expand_messages, partition_into_stages, verify_schedule, ConstraintMode, MessageInstance,
    MessageSchedule, RouteCandidates, Schedule, StageEncoder, StageOutcome, StageReport,
    SynthesisConfig, SynthesisError, SynthesisProblem, SynthesisReport, Synthesizer,
};

use crate::heuristic::{place_app, OccupancyTable};
use crate::partition::{plan_partitions, PartitionPlan};

/// How each partition is solved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SynthesisStrategy {
    /// Every partition is solved entirely by the staged SMT encoder.
    #[default]
    SmtOnly,
    /// Each partition is first placed by the greedy first-fit heuristic
    /// ([`crate::heuristic`]); the SMT encoder is invoked only to repair the
    /// applications the heuristic cannot place (with the heuristic placement
    /// pinned), and a whole-partition SMT solve remains the fallback when
    /// even the repair fails.
    HeuristicFirst,
}

/// Aggregate statistics of the heuristic-first placement across all
/// partitions (all zero under [`SynthesisStrategy::SmtOnly`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeuristicStats {
    /// Applications placed by the greedy heuristic alone.
    pub placed_apps: usize,
    /// Applications the SMT repair had to place.
    pub repaired_apps: usize,
    /// Partitions that fell back to a whole-partition SMT solve.
    pub fallback_partitions: usize,
}

/// Per-partition heuristic counters, folded into [`HeuristicStats`].
#[derive(Debug, Clone, Copy, Default)]
struct HeuristicCounters {
    placed: usize,
    repaired: usize,
    fallback: bool,
}

/// Always-on latency histograms for the scale phases. Observations are per
/// partition (solve, heuristic placement) or per repair solve, a few
/// hundred per synthesis run — `fig_scale --bench-json` reports per-run
/// p95s as `heuristic_p95_us` / `repair_p95_us` via
/// `Histogram::delta_since` snapshots (the registry is process-cumulative).
///
/// Straggler repair (`repair`: heuristic-first re-solving apps the greedy
/// placement could not fit — what `repaired_apps` counts) and
/// cross-partition conflict-repair rounds (`conflict_repair`: the joint
/// re-solve loop that runs under every strategy) are separate histograms:
/// conflating them made `repair_p95_us` report multi-second conflict
/// rounds on runs where zero apps were straggler-repaired.
struct ScaleMetrics {
    partition: Histogram,
    heuristic: Histogram,
    repair: Histogram,
    conflict_repair: Histogram,
}

fn scale_metrics() -> &'static ScaleMetrics {
    static METRICS: OnceLock<ScaleMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = tsn_telemetry::registry();
        ScaleMetrics {
            partition: registry.histogram("scale_partition_seconds"),
            heuristic: registry.histogram("scale_heuristic_seconds"),
            repair: registry.histogram("scale_repair_seconds"),
            conflict_repair: registry.histogram("scale_conflict_repair_seconds"),
        }
    })
}

/// Configuration of a [`ScaleSynthesizer`].
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// The per-partition synthesis configuration: route strategy, constraint
    /// mode, per-stage solver limits and intra-partition stage count.
    /// `verify` is ignored — the merged schedule is always verified.
    pub synthesis: SynthesisConfig,
    /// Upper bound on the number of applications per partition.
    pub target_apps_per_partition: usize,
    /// Worker threads for the partition phase (`0` = one per available
    /// core). The result is bit-identical for every thread count.
    pub threads: usize,
    /// Upper bound on conflict-repair rounds before giving up (one round is
    /// sufficient when the repair solve succeeds; more rounds only happen
    /// after escalation).
    pub max_repair_rounds: usize,
    /// Whether a failed partition solve or repair falls back to the
    /// monolithic [`Synthesizer`] (slow but complete relative to the
    /// explored space).
    pub fallback_monolithic: bool,
    /// How each partition is solved (pure SMT, or greedy heuristic with SMT
    /// repair).
    pub strategy: SynthesisStrategy,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            synthesis: SynthesisConfig {
                // One stage per partition: partitions are already small.
                stages: 1,
                verify: false,
                // A 1 ms latency grid (as in the online engine): the grid is
                // sound at any granularity, and the fine offline default
                // multiplies the Boolean structure by the stream count.
                mode: ConstraintMode::StabilityAware {
                    granularity: Time::from_millis(1),
                },
                ..SynthesisConfig::default()
            },
            target_apps_per_partition: 16,
            threads: 0,
            max_repair_rounds: 4,
            fallback_monolithic: true,
            strategy: SynthesisStrategy::SmtOnly,
        }
    }
}

/// Solver statistics of one partition.
#[derive(Debug, Clone, Default)]
pub struct PartitionReport {
    /// Partition index in the plan.
    pub partition: usize,
    /// Applications in this partition.
    pub apps: usize,
    /// Message count, wall-clock solve time and solver counters summed over
    /// the partition's stages (the `stage` index is the partition index).
    pub totals: StageReport,
}

/// Statistics of one conflict-repair round.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Repair round (0-based).
    pub round: usize,
    /// Applications involved in at least one cross-partition conflict.
    pub conflicting_apps: usize,
    /// Cross-partition conflict pairs detected this round.
    pub conflict_pairs: usize,
    /// Applications re-solved one at a time against the pinned remainder.
    pub resolved_apps: usize,
    /// Applications whose individual re-solve failed and that were
    /// re-solved jointly instead (escalation).
    pub escalated_apps: usize,
    /// Wall-clock time of the round's re-solve(s).
    pub solve_time: Duration,
}

/// The result of a partitioned synthesis.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// The merged, verified synthesis report. Its `stages` list carries one
    /// [`StageReport`] per partition stage plus one per repair solve.
    pub report: SynthesisReport,
    /// Per-partition solver statistics (empty when the monolithic fallback
    /// produced the result).
    pub partitions: Vec<PartitionReport>,
    /// Per-round repair statistics.
    pub repairs: Vec<RepairReport>,
    /// Worker threads used by the partition phase.
    pub threads: usize,
    /// Edges of the application contention graph.
    pub contention_edges: usize,
    /// Contention edges crossing partition boundaries.
    pub cut_edges: usize,
    /// Wall-clock time of the parallel partition phase alone.
    pub partition_wall_time: Duration,
    /// Whether the result came from the monolithic fallback path.
    pub monolithic_fallback: bool,
    /// The per-partition strategy this report was produced with.
    pub strategy: SynthesisStrategy,
    /// Heuristic-first placement statistics (all zero under
    /// [`SynthesisStrategy::SmtOnly`]).
    pub heuristic: HeuristicStats,
}

impl ScaleReport {
    /// Returns `true` if every application satisfies its stability
    /// condition.
    pub fn all_stable(&self) -> bool {
        self.report.all_stable()
    }
}

/// One partition's solve outcome, produced on a worker thread.
type PartitionOutcome = Result<
    (
        Vec<MessageSchedule>,
        PartitionReport,
        Vec<StageReport>,
        HeuristicCounters,
    ),
    SynthesisError,
>;

/// The partitioned, parallel large-scale synthesizer.
///
/// The solve has three phases:
///
/// 1. **Partition** — applications are grouped by contention
///    ([`plan_partitions`](crate::plan_partitions)) so that most link
///    sharing is intra-partition.
/// 2. **Parallel solve** — each partition is synthesized independently on a
///    scoped worker thread with its own warm-started [`Model`]; within a
///    partition the incremental staging of [`StageEncoder`] applies
///    unchanged.
/// 3. **Conflict repair** — the merged schedule is scanned for
///    cross-partition link overlaps; a greedy vertex cover of the conflict
///    graph is re-solved jointly against the *pinned* reservations of every
///    other application (the freeze/pin pattern of the online engine), which
///    resolves all conflicts in one round whenever the re-solve is feasible.
///
/// The merged schedule is always checked by [`verify_schedule`] and the
/// result is bit-identical for any thread count.
#[derive(Debug, Clone, Default)]
pub struct ScaleSynthesizer {
    config: ScaleConfig,
}

impl ScaleSynthesizer {
    /// Creates a synthesizer with the given configuration.
    pub fn new(config: ScaleConfig) -> Self {
        ScaleSynthesizer { config }
    }

    /// The configuration of this synthesizer.
    pub fn config(&self) -> &ScaleConfig {
        &self.config
    }

    /// Solves the joint routing and scheduling problem with partitioned
    /// parallel synthesis.
    ///
    /// # Errors
    ///
    /// Same contract as [`Synthesizer::synthesize`]; with
    /// [`ScaleConfig::fallback_monolithic`] disabled, partition or repair
    /// infeasibility surfaces as [`SynthesisError::Unsatisfiable`] /
    /// [`SynthesisError::ResourceLimit`] without the monolithic second
    /// opinion.
    pub fn synthesize(&self, problem: &SynthesisProblem) -> Result<ScaleReport, SynthesisError> {
        let _span = tsn_telemetry::span!("scale.synthesize");
        let start = Instant::now();
        problem.validate()?;
        let candidates = RouteCandidates::generate(problem, self.config.synthesis.route_strategy)?;
        let messages = expand_messages(problem);
        let plan = plan_partitions(problem, &candidates, self.config.target_apps_per_partition);
        let threads = self.resolve_threads(plan.groups.len());

        // Phase 2: parallel per-partition solves.
        let partition_start = Instant::now();
        let outcomes = self.solve_partitions(problem, &candidates, &messages, &plan, threads);
        let partition_wall_time = partition_start.elapsed();

        let mut partitions = Vec::with_capacity(plan.groups.len());
        let mut stage_reports: Vec<StageReport> = Vec::new();
        let mut by_app: Vec<Vec<MessageSchedule>> = vec![Vec::new(); problem.applications().len()];
        let mut failure: Option<SynthesisError> = None;
        let mut heuristic = HeuristicStats::default();
        for outcome in outcomes {
            match outcome {
                Ok((schedules, partition_report, stages, counters)) => {
                    for s in schedules {
                        by_app[s.message.app].push(s);
                    }
                    partitions.push(partition_report);
                    stage_reports.extend(stages);
                    heuristic.placed_apps += counters.placed;
                    heuristic.repaired_apps += counters.repaired;
                    heuristic.fallback_partitions += usize::from(counters.fallback);
                }
                Err(e) => failure = Some(failure.take().unwrap_or(e)),
            }
        }
        if let Some(e) = failure {
            return self.monolithic_or(problem, start, e, plan, threads, partition_wall_time);
        }

        // Phase 3: conflict repair. A greedy vertex cover of the conflict
        // graph is repaired one application at a time — each single-app
        // re-solve against the pinned remainder is tiny, and repairing every
        // cover app eliminates every conflict edge (re-solved apps avoid
        // everyone; the remaining apps form an independent set). Only apps
        // whose individual re-solve is infeasible are escalated to one joint
        // solve.
        let mut repairs = Vec::new();
        let mut round = 0usize;
        loop {
            let conflicts = detect_conflicts(problem, &by_app);
            if conflicts.is_empty() {
                break;
            }
            if round >= self.config.max_repair_rounds {
                // Repair rounds count as extra stages past the partitions,
                // so the reported indices stay coherent ("stage N of N").
                let e = SynthesisError::ResourceLimit {
                    stage: plan.groups.len() + round,
                };
                return self.monolithic_or(problem, start, e, plan, threads, partition_wall_time);
            }
            let conflicting = conflicting_apps(&conflicts);
            let cover = vertex_cover(&conflicts);
            let _round_span = tsn_telemetry::span!("scale.repair_round", round);
            let round_start = Instant::now();
            let mut round_stage = StageReport::default();
            let mut resolved_count = 0usize;
            let mut failed_apps: Vec<usize> = Vec::new();
            for &app in &cover {
                match self.repair_solve(problem, &candidates, &messages, &by_app, &[app]) {
                    Some((schedules, stats, solved_messages)) => {
                        by_app[app] = schedules;
                        round_stage.absorb(&StageReport::from_stats(
                            0,
                            solved_messages,
                            Duration::ZERO,
                            &stats,
                        ));
                        resolved_count += 1;
                    }
                    None => failed_apps.push(app),
                }
            }
            if !failed_apps.is_empty() {
                // Joint escalation: the stubborn apps get one shot together
                // (they can reshuffle each other, which single-app solves
                // cannot).
                match self.repair_solve(problem, &candidates, &messages, &by_app, &failed_apps) {
                    Some((schedules, stats, solved_messages)) => {
                        for &app in &failed_apps {
                            by_app[app].clear();
                        }
                        for s in schedules {
                            by_app[s.message.app].push(s);
                        }
                        round_stage.absorb(&StageReport::from_stats(
                            0,
                            solved_messages,
                            Duration::ZERO,
                            &stats,
                        ));
                    }
                    None => {
                        let e = SynthesisError::Unsatisfiable {
                            stage: plan.groups.len() + round,
                            stages: plan.groups.len() + round + 1,
                        };
                        return self.monolithic_or(
                            problem,
                            start,
                            e,
                            plan,
                            threads,
                            partition_wall_time,
                        );
                    }
                }
            }
            round_stage.solve_time = round_start.elapsed();
            scale_metrics()
                .conflict_repair
                .observe(round_stage.solve_time);
            repairs.push(RepairReport {
                round,
                conflicting_apps: conflicting.len(),
                conflict_pairs: conflicts.len(),
                resolved_apps: resolved_count,
                escalated_apps: failed_apps.len(),
                solve_time: round_stage.solve_time,
            });
            stage_reports.push(round_stage);
            round += 1;
        }

        // Merge, verify, assemble.
        let mut merged: Vec<MessageSchedule> = by_app.into_iter().flatten().collect();
        merged.sort_by_key(|m| (m.message.release, m.message.app, m.message.instance));
        let schedule = Schedule {
            hyperperiod: problem.hyperperiod(),
            messages: merged,
        };
        verify_schedule(problem, &schedule, self.config.synthesis.mode)
            .map_err(|what| SynthesisError::VerificationFailed { what })?;
        for (i, stage) in stage_reports.iter_mut().enumerate() {
            stage.stage = i;
        }
        let report = SynthesisReport::assemble(problem, schedule, stage_reports, start.elapsed());
        Ok(ScaleReport {
            report,
            partitions,
            repairs,
            threads,
            contention_edges: plan.contention_edges,
            cut_edges: plan.cut_edges,
            partition_wall_time,
            monolithic_fallback: false,
            strategy: self.config.strategy,
            heuristic,
        })
    }

    fn resolve_threads(&self, partitions: usize) -> usize {
        let configured = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        configured.min(partitions).max(1)
    }

    /// Solves every partition on a pool of scoped worker threads. Partition
    /// indices are handed out through an atomic cursor; results land in
    /// plan-order slots, so the outcome is independent of scheduling.
    fn solve_partitions(
        &self,
        problem: &SynthesisProblem,
        candidates: &RouteCandidates,
        messages: &[MessageInstance],
        plan: &PartitionPlan,
        threads: usize,
    ) -> Vec<PartitionOutcome> {
        let group_messages: Vec<Vec<MessageInstance>> = plan
            .groups
            .iter()
            .map(|group| {
                messages
                    .iter()
                    .filter(|m| group.binary_search(&m.app).is_ok())
                    .copied()
                    .collect()
            })
            .collect();
        let slots: Mutex<Vec<Option<PartitionOutcome>>> =
            Mutex::new((0..plan.groups.len()).map(|_| None).collect());
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= plan.groups.len() {
                        break;
                    }
                    let outcome = self.solve_one_partition(
                        problem,
                        candidates,
                        idx,
                        &plan.groups[idx],
                        &group_messages[idx],
                    );
                    slots.lock().expect("no poisoned workers")[idx] = Some(outcome);
                });
            }
        });
        slots
            .into_inner()
            .expect("scope joined every worker")
            .into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect()
    }

    /// Solves one partition according to the configured
    /// [`SynthesisStrategy`].
    fn solve_one_partition(
        &self,
        problem: &SynthesisProblem,
        candidates: &RouteCandidates,
        partition: usize,
        group: &[usize],
        msgs: &[MessageInstance],
    ) -> PartitionOutcome {
        let _span = tsn_telemetry::span!("scale.partition", partition);
        let timer = Instant::now();
        let outcome = match self.config.strategy {
            SynthesisStrategy::SmtOnly => self
                .smt_partition(problem, candidates, partition, group, msgs)
                .map(|(fixed, report, stages)| {
                    (fixed, report, stages, HeuristicCounters::default())
                }),
            SynthesisStrategy::HeuristicFirst => {
                self.heuristic_partition(problem, candidates, partition, group, msgs)
            }
        };
        scale_metrics().partition.observe(timer.elapsed());
        outcome
    }

    /// Solves one partition with the greedy first-fit placer, repairing the
    /// stragglers with one SMT solve against the pinned placement. A failed
    /// repair falls back to the whole-partition SMT solve, so heuristic-first
    /// never loses instances the pure-SMT strategy would solve.
    fn heuristic_partition(
        &self,
        problem: &SynthesisProblem,
        candidates: &RouteCandidates,
        partition: usize,
        group: &[usize],
        msgs: &[MessageInstance],
    ) -> PartitionOutcome {
        let _span = tsn_telemetry::span!("scale.heuristic", partition);
        let start = Instant::now();
        let mode = self.config.synthesis.mode;
        let mut occupancy = OccupancyTable::new();
        let mut placed: Vec<MessageSchedule> = Vec::with_capacity(msgs.len());
        let mut unplaced: Vec<usize> = Vec::new();
        for &app in group {
            let instances: Vec<MessageInstance> =
                msgs.iter().filter(|m| m.app == app).copied().collect();
            match place_app(problem, candidates, app, &instances, &mut occupancy, mode) {
                Some(schedules) => placed.extend(schedules),
                None => unplaced.push(app),
            }
        }
        let mut stages = Vec::new();
        // The heuristic pass is reported as a zero-counter stage, so the
        // merged report still accounts for every message and the placement
        // wall time.
        stages.push(StageReport {
            stage: 0,
            messages: placed.len(),
            solve_time: start.elapsed(),
            ..StageReport::default()
        });
        scale_metrics().heuristic.observe(start.elapsed());
        let mut counters = HeuristicCounters {
            placed: group.len() - unplaced.len(),
            repaired: 0,
            fallback: false,
        };
        if !unplaced.is_empty() {
            let current: Vec<MessageInstance> = msgs
                .iter()
                .filter(|m| unplaced.binary_search(&m.app).is_ok())
                .copied()
                .collect();
            let repair_span = tsn_telemetry::span!("scale.repair", partition);
            let repair_start = Instant::now();
            let mut encoder = StageEncoder::new(problem, candidates, &self.config.synthesis);
            encoder.encode(&current, &placed);
            let (outcome, stats) = encoder.solve(&current);
            scale_metrics().repair.observe(repair_start.elapsed());
            drop(repair_span);
            match outcome {
                StageOutcome::Solved(schedules) => {
                    counters.repaired = unplaced.len();
                    stages.push(StageReport::from_stats(
                        0,
                        current.len(),
                        repair_start.elapsed(),
                        &stats,
                    ));
                    placed.extend(schedules);
                }
                StageOutcome::Unsatisfiable | StageOutcome::ResourceLimit => {
                    // The pinned heuristic placement may itself be what makes
                    // the repair infeasible: retry the partition from scratch
                    // with the pure-SMT path before giving up.
                    counters = HeuristicCounters {
                        placed: 0,
                        repaired: 0,
                        fallback: true,
                    };
                    return self
                        .smt_partition(problem, candidates, partition, group, msgs)
                        .map(|(fixed, report, stages)| (fixed, report, stages, counters));
                }
            }
        }
        let mut totals = StageReport {
            stage: partition,
            ..StageReport::default()
        };
        for stage in &stages {
            totals.absorb(stage);
        }
        totals.messages = msgs.len();
        totals.solve_time = start.elapsed();
        Ok((
            placed,
            PartitionReport {
                partition,
                apps: group.len(),
                totals,
            },
            stages,
            counters,
        ))
    }

    /// Solves one partition: its messages are staged over the hyper-period
    /// and solved incrementally on a single warm-started model, each stage
    /// pinned before the next (the `tsn_online` freeze/pin pattern applied
    /// offline).
    fn smt_partition(
        &self,
        problem: &SynthesisProblem,
        candidates: &RouteCandidates,
        partition: usize,
        group: &[usize],
        msgs: &[MessageInstance],
    ) -> Result<(Vec<MessageSchedule>, PartitionReport, Vec<StageReport>), SynthesisError> {
        let start = Instant::now();
        let stage_count = self.config.synthesis.stages.max(1);
        let slices = partition_into_stages(msgs, problem.hyperperiod(), stage_count);
        let mut model = Model::new();
        model.set_warm_start(true);
        let mut fixed: Vec<MessageSchedule> = Vec::with_capacity(msgs.len());
        let mut stages = Vec::new();
        for (stage_idx, slice) in slices.iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let stage_start = Instant::now();
            let mut encoder =
                StageEncoder::with_model(problem, candidates, &self.config.synthesis, model);
            encoder.encode(slice, &fixed);
            let (outcome, stats) = encoder.solve(slice);
            let stage_time = stage_start.elapsed();
            stages.push(StageReport::from_stats(0, slice.len(), stage_time, &stats));
            match outcome {
                StageOutcome::Solved(schedules) => {
                    encoder.pin_solution(&schedules);
                    model = encoder.into_model();
                    fixed.extend(schedules);
                }
                StageOutcome::Unsatisfiable => {
                    return Err(SynthesisError::Unsatisfiable {
                        stage: stage_idx,
                        stages: stage_count,
                    })
                }
                StageOutcome::ResourceLimit => {
                    return Err(SynthesisError::ResourceLimit { stage: stage_idx })
                }
            }
        }
        // The partition totals are by definition the sums over its stage
        // reports — derive them so the two views cannot drift. The wall
        // clock covers encoding too, so it overrides the summed solve time.
        let mut totals = StageReport {
            stage: partition,
            ..StageReport::default()
        };
        for stage in &stages {
            totals.absorb(stage);
        }
        totals.solve_time = start.elapsed();
        Ok((
            fixed,
            PartitionReport {
                partition,
                apps: group.len(),
                totals,
            },
            stages,
        ))
    }

    /// Re-solves all messages of `apps` (sorted) jointly against the pinned
    /// reservations of every other application. Returns the schedules (in
    /// message order), the solver statistics and the batch size; `None` when
    /// the re-solve is unsatisfiable or hits its resource limit.
    fn repair_solve(
        &self,
        problem: &SynthesisProblem,
        candidates: &RouteCandidates,
        messages: &[MessageInstance],
        by_app: &[Vec<MessageSchedule>],
        apps: &[usize],
    ) -> Option<(Vec<MessageSchedule>, tsn_smt::SolverStats, usize)> {
        let current: Vec<MessageInstance> = messages
            .iter()
            .filter(|m| apps.binary_search(&m.app).is_ok())
            .copied()
            .collect();
        let fixed: Vec<MessageSchedule> = by_app
            .iter()
            .enumerate()
            .filter(|(app, _)| apps.binary_search(app).is_err())
            .flat_map(|(_, v)| v.iter().cloned())
            .collect();
        let mut encoder = StageEncoder::new(problem, candidates, &self.config.synthesis);
        encoder.encode(&current, &fixed);
        let (outcome, stats) = encoder.solve(&current);
        match outcome {
            StageOutcome::Solved(schedules) => Some((schedules, stats, current.len())),
            StageOutcome::Unsatisfiable | StageOutcome::ResourceLimit => None,
        }
    }

    /// Falls back to the monolithic synthesizer, or propagates the
    /// partitioned failure when the fallback is disabled.
    fn monolithic_or(
        &self,
        problem: &SynthesisProblem,
        start: Instant,
        error: SynthesisError,
        plan: PartitionPlan,
        threads: usize,
        partition_wall_time: Duration,
    ) -> Result<ScaleReport, SynthesisError> {
        if !self.config.fallback_monolithic {
            return Err(error);
        }
        let config = SynthesisConfig {
            verify: true,
            ..self.config.synthesis.clone()
        };
        let report = Synthesizer::new(config)
            .synthesize(problem)
            .map_err(|_| error)?;
        let mut report = report;
        report.total_time = start.elapsed();
        Ok(ScaleReport {
            report,
            partitions: Vec::new(),
            repairs: Vec::new(),
            threads,
            contention_edges: plan.contention_edges,
            cut_edges: plan.cut_edges,
            partition_wall_time,
            monolithic_fallback: true,
            strategy: self.config.strategy,
            heuristic: HeuristicStats::default(),
        })
    }
}

/// Detects link-overlap conflicts between applications in the merged
/// schedule, sweeping the same per-link occupancy table
/// ([`tsn_synthesis::link_occupancies`]) the independent verifier checks —
/// so anything the verifier would reject between two applications is found
/// (and repaired) here first. Returns the conflicting application pairs,
/// each ordered `(low, high)` and deduplicated. Only *cross-partition* pairs
/// can actually occur (intra-partition overlaps are excluded by the
/// partition's own encoding, and repair re-solves against everything else
/// pinned), but the scan does not rely on that: any inter-application
/// overlap is reported and repaired.
fn detect_conflicts(
    problem: &SynthesisProblem,
    by_app: &[Vec<MessageSchedule>],
) -> Vec<(usize, usize)> {
    let per_link = tsn_synthesis::link_occupancies(problem, by_app.iter().flatten());
    let mut pairs = std::collections::BTreeSet::new();
    for occupancies in per_link.values() {
        for (i, &(_, end_a, app_a, _)) in occupancies.iter().enumerate() {
            for &(start_b, _, app_b, _) in &occupancies[i + 1..] {
                if start_b >= end_a {
                    break;
                }
                if app_a != app_b {
                    pairs.insert((app_a.min(app_b), app_a.max(app_b)));
                }
            }
        }
    }
    pairs.into_iter().collect()
}

/// The sorted set of applications appearing in any conflict pair.
fn conflicting_apps(pairs: &[(usize, usize)]) -> Vec<usize> {
    let mut apps: Vec<usize> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    apps.sort_unstable();
    apps.dedup();
    apps
}

/// A deterministic greedy vertex cover of the conflict graph: repeatedly
/// takes the application with the most uncovered conflict edges (ties break
/// towards the smaller index). Re-solving a cover leaves the remaining
/// applications pairwise conflict-free, so one feasible joint re-solve of
/// the cover repairs every conflict.
fn vertex_cover(pairs: &[(usize, usize)]) -> Vec<usize> {
    let mut remaining: Vec<(usize, usize)> = pairs.to_vec();
    let mut cover = Vec::new();
    while !remaining.is_empty() {
        let mut degree: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for &(a, b) in &remaining {
            *degree.entry(a).or_default() += 1;
            *degree.entry(b).or_default() += 1;
        }
        let best = degree
            .iter()
            .max_by_key(|(app, d)| (**d, std::cmp::Reverse(**app)))
            .map(|(app, _)| *app)
            .expect("non-empty remaining set");
        cover.push(best);
        remaining.retain(|&(a, b)| a != best && b != best);
    }
    cover.sort_unstable();
    cover
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_cover_covers_every_edge() {
        let pairs = vec![(0, 1), (1, 2), (2, 3), (0, 3), (4, 5)];
        let cover = vertex_cover(&pairs);
        for (a, b) in &pairs {
            assert!(
                cover.contains(a) || cover.contains(b),
                "edge ({a},{b}) uncovered by {cover:?}"
            );
        }
        assert!(cover.len() <= 4, "greedy cover too large: {cover:?}");
        assert_eq!(cover, vertex_cover(&pairs), "cover is deterministic");
    }

    #[test]
    fn conflicting_apps_flattens_and_dedups() {
        assert_eq!(conflicting_apps(&[(3, 1), (1, 2)]), vec![1, 2, 3]);
        assert!(conflicting_apps(&[]).is_empty());
    }

    #[test]
    fn heuristic_first_solves_the_example_and_reports_placements() {
        use tsn_control::PiecewiseLinearBound;
        use tsn_net::{builders, LinkSpec};

        let net = builders::figure1_example(LinkSpec::fast_ethernet());
        let mut problem = SynthesisProblem::new(net.topology, Time::from_micros(5));
        for i in 0..3 {
            problem
                .add_application(
                    format!("loop-{i}"),
                    net.sensors[i],
                    net.controllers[i],
                    Time::from_millis(10),
                    1500,
                    PiecewiseLinearBound::single_segment(2.0, 0.012),
                )
                .unwrap();
        }
        let config = ScaleConfig {
            target_apps_per_partition: 2,
            threads: 1,
            strategy: SynthesisStrategy::HeuristicFirst,
            fallback_monolithic: false,
            ..ScaleConfig::default()
        };
        let report = ScaleSynthesizer::new(config).synthesize(&problem).unwrap();
        assert!(report.all_stable());
        assert_eq!(report.strategy, SynthesisStrategy::HeuristicFirst);
        assert_eq!(report.report.schedule.messages.len(), 3);
        assert!(report.heuristic.placed_apps + report.heuristic.repaired_apps <= 3);
        if report.heuristic.fallback_partitions == 0 {
            assert_eq!(
                report.heuristic.placed_apps + report.heuristic.repaired_apps,
                3,
                "without fallback, every application is placed or repaired"
            );
        }
        // Partition bookkeeping holds for the heuristic path too.
        let apps: usize = report.partitions.iter().map(|p| p.apps).sum();
        let messages: usize = report.partitions.iter().map(|p| p.totals.messages).sum();
        assert_eq!(apps, 3);
        assert_eq!(messages, 3);
    }

    #[test]
    fn repair_errors_report_coherent_stage_indices() {
        // A repair failure in round r is reported as stage P+r of P+r+1
        // (the repair rounds count as extra stages past the P partitions),
        // so the rendered message never claims "stage 11 of 10".
        let e = SynthesisError::Unsatisfiable {
            stage: 10,
            stages: 11,
        };
        assert!(e.to_string().contains("stage 11 of 11"));
    }
}
