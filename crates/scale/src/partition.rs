//! Contention-graph partitioning of applications.
//!
//! Two applications *contend* when their candidate routes can share a
//! directed link (the sensor's own access link is excluded: it belongs to
//! exactly one application). Contention is exactly the condition under which
//! two independently solved schedules can collide, so the partitioner groups
//! heavily contending applications together: intra-partition contention is
//! resolved by the partition's own solver, and only the (minimized)
//! cross-partition contention is left to the conflict-repair loop.
//!
//! The grouping is a deterministic greedy agglomeration — applications are
//! visited in decreasing order of total contention weight, and each joins the
//! open partition it shares the most links with (or opens a new one when it
//! contends with nothing placed so far). Determinism matters: the partition
//! plan is part of the reproducible solve, independent of thread count.

use tsn_synthesis::{RouteCandidates, SynthesisProblem};

/// One application's contention neighbours: `(other_app, shared_links)`.
type Edges = Vec<(usize, u32)>;

/// A deterministic partition plan over the applications of a problem.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Application indices per partition; each group is sorted ascending and
    /// the groups are ordered by their smallest member.
    pub groups: Vec<Vec<usize>>,
    /// Number of edges in the contention graph.
    pub contention_edges: usize,
    /// Number of contention edges crossing partition boundaries — the edges
    /// the conflict-repair loop may have to fix.
    pub cut_edges: usize,
    /// Total shared-link weight of the crossing edges.
    pub cut_weight: u64,
}

impl PartitionPlan {
    /// The partition index of every application.
    pub fn partition_of(&self, app_count: usize) -> Vec<usize> {
        let mut of = vec![0usize; app_count];
        for (p, group) in self.groups.iter().enumerate() {
            for &app in group {
                of[app] = p;
            }
        }
        of
    }
}

/// The sorted switch-egress link set an application's candidate routes can
/// touch (the first hop — the sensor's private access link — is excluded).
fn link_set(candidates: &RouteCandidates, app: usize) -> Vec<u32> {
    let mut links: Vec<u32> = candidates
        .for_app(app)
        .iter()
        .flat_map(|r| r.links().iter().skip(1))
        .map(|l| l.index() as u32)
        .collect();
    links.sort_unstable();
    links.dedup();
    links
}

/// The number of common elements of two sorted, deduplicated slices.
fn intersection_size(a: &[u32], b: &[u32]) -> u32 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Builds the contention graph: for every application, its weighted
/// neighbour list.
fn contention_graph(candidates: &RouteCandidates, app_count: usize) -> Vec<Edges> {
    let sets: Vec<Vec<u32>> = (0..app_count).map(|a| link_set(candidates, a)).collect();
    // Invert to a link -> apps index so only pairs that can actually share a
    // link are compared (the all-pairs loop is quadratic in the app count,
    // which hurts at thousands of streams on sparse fabrics).
    let mut apps_of_link: std::collections::HashMap<u32, Vec<usize>> =
        std::collections::HashMap::new();
    for (app, set) in sets.iter().enumerate() {
        for &l in set {
            apps_of_link.entry(l).or_default().push(app);
        }
    }
    let mut pairs: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    for apps in apps_of_link.values() {
        for (i, &a) in apps.iter().enumerate() {
            for &b in &apps[i + 1..] {
                pairs.insert((a.min(b), a.max(b)));
            }
        }
    }
    let mut edges: Vec<Edges> = vec![Vec::new(); app_count];
    for (a, b) in pairs {
        let w = intersection_size(&sets[a], &sets[b]);
        debug_assert!(w > 0);
        edges[a].push((b, w));
        edges[b].push((a, w));
    }
    edges
}

/// Plans partitions of at most `target_apps` applications each, grouping
/// applications by contention.
pub fn plan_partitions(
    problem: &SynthesisProblem,
    candidates: &RouteCandidates,
    target_apps: usize,
) -> PartitionPlan {
    let n = problem.applications().len();
    let target = target_apps.max(1);
    let max_groups = n.div_ceil(target);
    let edges = contention_graph(candidates, n);
    let contention_edges = edges.iter().map(Vec::len).sum::<usize>() / 2;

    // Visit heavy apps first so the partitions crystallize around the
    // congestion hot spots.
    let mut order: Vec<usize> = (0..n).collect();
    let total_weight: Vec<u64> = edges
        .iter()
        .map(|e| e.iter().map(|&(_, w)| w as u64).sum())
        .collect();
    order.sort_by_key(|&a| (std::cmp::Reverse(total_weight[a]), a));

    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of: Vec<Option<usize>> = vec![None; n];
    for &app in &order {
        // Affinity of this app to every open, non-full group.
        let mut affinity: Vec<u64> = vec![0; groups.len()];
        for &(other, w) in &edges[app] {
            if let Some(g) = group_of[other] {
                if groups[g].len() < target {
                    affinity[g] += w as u64;
                }
            }
        }
        let best = (0..groups.len())
            .filter(|&g| groups[g].len() < target && affinity[g] > 0)
            .max_by_key(|&g| (affinity[g], std::cmp::Reverse(g)));
        let g = match best {
            Some(g) => g,
            None if groups.len() < max_groups => {
                groups.push(Vec::new());
                groups.len() - 1
            }
            None => {
                // Every group is full or unrelated: join the emptiest one
                // that still has room (there is always room: the target
                // bound is only saturated when max_groups * target >= n).
                (0..groups.len())
                    .filter(|&g| groups[g].len() < target)
                    .min_by_key(|&g| (groups[g].len(), g))
                    .expect("max_groups * target >= app count")
            }
        };
        groups[g].push(app);
        group_of[app] = Some(g);
    }

    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g[0]);
    let mut plan = PartitionPlan {
        groups,
        contention_edges,
        cut_edges: 0,
        cut_weight: 0,
    };
    let of = plan.partition_of(n);
    for (a, adj) in edges.iter().enumerate() {
        for &(b, w) in adj {
            if a < b && of[a] != of[b] {
                plan.cut_edges += 1;
                plan.cut_weight += w as u64;
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_control::PiecewiseLinearBound;
    use tsn_net::{builders, LinkSpec, Time};
    use tsn_synthesis::RouteStrategy;

    fn problem(apps: usize) -> SynthesisProblem {
        let net = builders::automotive_backbone(apps, apps, LinkSpec::fast_ethernet());
        let mut p = SynthesisProblem::new(net.topology, Time::from_micros(5));
        for i in 0..apps {
            p.add_application(
                format!("a{i}"),
                net.sensors[i],
                net.controllers[i],
                Time::from_millis(20),
                1500,
                PiecewiseLinearBound::single_segment(1.5, 0.03),
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn plan_covers_every_app_exactly_once() {
        let p = problem(7);
        let candidates = RouteCandidates::generate(&p, RouteStrategy::KShortest(3)).unwrap();
        let plan = plan_partitions(&p, &candidates, 3);
        assert!(
            plan.groups.len() >= 3,
            "7 apps at target 3 need >= 3 groups"
        );
        let mut all: Vec<usize> = plan.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
        for g in &plan.groups {
            assert!(g.len() <= 3);
            assert!(g.windows(2).all(|w| w[0] < w[1]), "groups stay sorted");
        }
        let of = plan.partition_of(7);
        assert_eq!(of.len(), 7);
    }

    #[test]
    fn plan_is_deterministic() {
        let p = problem(6);
        let candidates = RouteCandidates::generate(&p, RouteStrategy::KShortest(3)).unwrap();
        let a = plan_partitions(&p, &candidates, 2);
        let b = plan_partitions(&p, &candidates, 2);
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.cut_edges, b.cut_edges);
        assert_eq!(a.cut_weight, b.cut_weight);
    }

    #[test]
    fn single_partition_when_target_covers_all() {
        let p = problem(4);
        let candidates = RouteCandidates::generate(&p, RouteStrategy::KShortest(2)).unwrap();
        let plan = plan_partitions(&p, &candidates, 16);
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.cut_edges, 0);
        assert_eq!(plan.cut_weight, 0);
    }

    #[test]
    fn contention_graph_ignores_sensor_links() {
        // Two apps on one line fabric: they share every switch link but not
        // each other's sensor access links.
        let p = problem(2);
        let candidates = RouteCandidates::generate(&p, RouteStrategy::KShortest(1)).unwrap();
        let edges = contention_graph(&candidates, 2);
        for (app, adj) in edges.iter().enumerate() {
            let set = link_set(&candidates, app);
            for r in candidates.for_app(app) {
                let sensor_link = r.links()[0].index() as u32;
                assert!(!set.contains(&sensor_link));
            }
            for &(other, w) in adj {
                assert_ne!(other, app);
                assert!(w > 0);
            }
        }
    }
}
