//! Greedy first-fit route + offset placement: the cheap half of the
//! [`SynthesisStrategy::HeuristicFirst`](crate::SynthesisStrategy) partition
//! solve.
//!
//! Following the divide-and-conquer regime of *"Just a Second"*
//! (arXiv:2306.07710), most applications of a partition can be placed by a
//! trivial deterministic heuristic, leaving the SMT solver to repair only
//! the stragglers. The placer assigns every application one candidate route
//! and one *per-hop offset vector* applied identically to all of its
//! instances:
//!
//! * the first hop is pinned at the release time (the verifier's Eq. 6
//!   contract), so the offset of hop 0 is always zero;
//! * every later hop starts at the transposition minimum
//!   `prev + ld + sd` and is pushed later, first-fit, past any occupied
//!   interval of its link;
//! * because the offsets are shared by all instances, every instance of an
//!   application has the same end-to-end delay — zero jitter by
//!   construction, which makes the stability check (Eq. 10) a single margin
//!   evaluation at the final delay.
//!
//! The placer is purely additive: offsets only grow, so the search
//! terminates as soon as the implied end-to-end delay exceeds the period
//! deadline, and the whole procedure is deterministic (route order, then
//! hop order, then instance order).

use std::collections::HashMap;

use tsn_net::{LinkId, Time};
use tsn_synthesis::{
    ConstraintMode, MessageInstance, MessageSchedule, RouteCandidates, SynthesisProblem,
};

/// Per-link sorted, pairwise-disjoint occupancy intervals `[start, end)`
/// accumulated by the greedy placer.
#[derive(Debug, Default)]
pub struct OccupancyTable {
    per_link: HashMap<LinkId, Vec<(Time, Time)>>,
}

impl OccupancyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        OccupancyTable::default()
    }

    /// Returns `None` when `[start, end)` is free on `link`, otherwise the
    /// end of the blocking interval (the earliest start that could clear it).
    pub fn blocked_until(&self, link: LinkId, start: Time, end: Time) -> Option<Time> {
        let intervals = self.per_link.get(&link)?;
        // Intervals are sorted by start and pairwise disjoint, so the only
        // candidate overlapping `[start, end)` is the last one starting
        // before `end`.
        let idx = intervals.partition_point(|&(s, _)| s < end);
        match idx.checked_sub(1).map(|i| intervals[i]) {
            Some((_, e)) if e > start => Some(e),
            _ => None,
        }
    }

    /// Reserves `[start, end)` on `link`. The caller must have checked the
    /// interval is free.
    pub fn reserve(&mut self, link: LinkId, start: Time, end: Time) {
        let intervals = self.per_link.entry(link).or_default();
        let idx = intervals.partition_point(|&(s, _)| s < start);
        debug_assert!(
            idx == intervals.len() || intervals[idx].0 >= end,
            "reserving an occupied interval"
        );
        intervals.insert(idx, (start, end));
    }

    /// Reserves every link transmission of a finished schedule, so repaired
    /// or externally produced schedules participate in later placements.
    pub fn reserve_schedule(&mut self, problem: &SynthesisProblem, schedule: &MessageSchedule) {
        let frame = problem.applications()[schedule.message.app].frame_bytes;
        for &(link, time) in &schedule.link_release {
            let ld = problem.topology().link(link).transmission_delay(frame);
            self.reserve(link, time, time + ld);
        }
    }
}

/// Tries to place every instance of application `app` with one route and one
/// shared per-hop offset vector, first-fit against `occupancy`. On success
/// the chosen intervals are reserved and the message schedules returned (in
/// the order of `instances`); `None` leaves the table untouched.
pub fn place_app(
    problem: &SynthesisProblem,
    candidates: &RouteCandidates,
    app: usize,
    instances: &[MessageInstance],
    occupancy: &mut OccupancyTable,
    mode: ConstraintMode,
) -> Option<Vec<MessageSchedule>> {
    if instances.is_empty() {
        return Some(Vec::new());
    }
    let application = &problem.applications()[app];
    let sd = problem.forwarding_delay();
    let topology = problem.topology();
    'routes: for route in candidates.for_app(app) {
        let links = route.links();
        let lds: Vec<Time> = links
            .iter()
            .map(|&l| topology.link(l).transmission_delay(application.frame_bytes))
            .collect();
        // Shared offsets relative to each instance's release; hop 0 is
        // pinned at the release itself.
        let mut off: Vec<Time> = vec![Time::ZERO; links.len()];
        for h in 1..off.len() {
            off[h] = off[h - 1] + lds[h - 1] + sd;
        }
        // First-fit: push each hop past occupied intervals until every
        // instance fits. Offsets only grow, so the deadline bounds the
        // search; the bump cap guards against pathological fragmentation.
        let mut bumps = 0usize;
        let max_bumps = 64 + 16 * links.len() * instances.len();
        let mut hop = 0usize;
        while hop < links.len() {
            let mut bumped = false;
            for m in instances {
                let start = m.release + off[hop];
                if let Some(until) = occupancy.blocked_until(links[hop], start, start + lds[hop]) {
                    if hop == 0 {
                        // The sensor transmission cannot move.
                        continue 'routes;
                    }
                    off[hop] = until - m.release;
                    for h in (hop + 1)..links.len() {
                        off[h] = off[h].max(off[h - 1] + lds[h - 1] + sd);
                    }
                    bumps += 1;
                    if bumps > max_bumps
                        || off[hop] + lds[hop] + sd * (links.len() - 1 - hop) as i64
                            > application.period
                    {
                        continue 'routes;
                    }
                    bumped = true;
                    break;
                }
            }
            if !bumped {
                hop += 1;
            }
        }
        let end_to_end = off[links.len() - 1] + lds[links.len() - 1];
        if end_to_end > application.period {
            continue;
        }
        // Shared offsets give every instance the same end-to-end delay:
        // zero jitter, so stability reduces to one margin evaluation.
        if matches!(mode, ConstraintMode::StabilityAware { .. })
            && !application.is_stable(end_to_end, Time::ZERO)
        {
            continue;
        }
        let mut schedules = Vec::with_capacity(instances.len());
        for m in instances {
            let link_release: Vec<(LinkId, Time)> = links
                .iter()
                .zip(off.iter())
                .map(|(&l, &o)| (l, m.release + o))
                .collect();
            for (&(link, time), &ld) in link_release.iter().zip(lds.iter()) {
                occupancy.reserve(link, time, time + ld);
            }
            schedules.push(MessageSchedule {
                message: *m,
                route: route.clone(),
                link_release,
                end_to_end,
            });
        }
        return Some(schedules);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_control::PiecewiseLinearBound;
    use tsn_net::{builders, LinkSpec};
    use tsn_synthesis::{expand_messages, verify_schedule, RouteStrategy, Schedule};

    #[test]
    fn occupancy_table_finds_blockers_and_gaps() {
        let net = builders::figure1_example(LinkSpec::fast_ethernet());
        let route = net
            .topology
            .shortest_route(net.sensors[0], net.controllers[0])
            .unwrap();
        let link = route.links()[0];
        let mut occ = OccupancyTable::new();
        let us = Time::from_micros;
        occ.reserve(link, us(100), us(200));
        occ.reserve(link, us(300), us(400));
        assert_eq!(occ.blocked_until(link, us(0), us(100)), None);
        assert_eq!(occ.blocked_until(link, us(150), us(160)), Some(us(200)));
        assert_eq!(occ.blocked_until(link, us(90), us(110)), Some(us(200)));
        assert_eq!(occ.blocked_until(link, us(200), us(300)), None);
        assert_eq!(occ.blocked_until(link, us(390), us(450)), Some(us(400)));
        assert_eq!(occ.blocked_until(link, us(400), us(500)), None);
    }

    #[test]
    fn greedy_placement_passes_the_verifier() {
        let net = builders::figure1_example(LinkSpec::fast_ethernet());
        let mut problem = tsn_synthesis::SynthesisProblem::new(net.topology, Time::from_micros(5));
        for i in 0..3 {
            problem
                .add_application(
                    format!("loop-{i}"),
                    net.sensors[i],
                    net.controllers[i],
                    Time::from_millis(10 * (1 + i as i64 % 2)),
                    1500,
                    PiecewiseLinearBound::single_segment(2.0, 0.012),
                )
                .unwrap();
        }
        let candidates = RouteCandidates::generate(&problem, RouteStrategy::KShortest(3)).unwrap();
        let messages = expand_messages(&problem);
        let mode = ConstraintMode::StabilityAware {
            granularity: Time::from_millis(1),
        };
        let mut occ = OccupancyTable::new();
        let mut placed = Vec::new();
        for app in 0..problem.applications().len() {
            let instances: Vec<MessageInstance> =
                messages.iter().filter(|m| m.app == app).copied().collect();
            let schedules = place_app(&problem, &candidates, app, &instances, &mut occ, mode)
                .expect("the Figure-1 example is easy to place");
            // All instances of one app share an end-to-end delay.
            assert!(schedules
                .windows(2)
                .all(|w| w[0].end_to_end == w[1].end_to_end));
            placed.extend(schedules);
        }
        placed.sort_by_key(|m| (m.message.release, m.message.app, m.message.instance));
        let schedule = Schedule {
            hyperperiod: problem.hyperperiod(),
            messages: placed,
        };
        verify_schedule(&problem, &schedule, mode).unwrap();
    }
}
