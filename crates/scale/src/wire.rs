//! Wire format for partitioned-synthesis results: JSON encoding and
//! decoding of [`ScaleReport`]s and their partition/repair bookkeeping.
//!
//! The synthesis daemon (`tsn_service`) dispatches large `Synthesize`
//! requests to [`ScaleSynthesizer`](crate::ScaleSynthesizer) and ships the
//! partition statistics back to the client; benches archive them as JSON
//! artifacts. Like every wire module of the workspace this provides explicit
//! `to_json`/`from_json` pairs over [`tsn_net::json::Json`] that round-trip
//! bit-exactly.

use std::time::Duration;

use tsn_net::json::{Json, JsonError};
use tsn_synthesis::wire::{
    duration_from_json, duration_to_json, get_arr, get_bool, get_usize, report_from_json,
    report_to_json, stage_report_from_json, stage_report_to_json,
};

use crate::{HeuristicStats, PartitionReport, RepairReport, ScaleReport, SynthesisStrategy};

/// Encodes a [`SynthesisStrategy`].
pub fn strategy_to_json(strategy: SynthesisStrategy) -> Json {
    Json::Str(
        match strategy {
            SynthesisStrategy::SmtOnly => "smt_only",
            SynthesisStrategy::HeuristicFirst => "heuristic_first",
        }
        .to_string(),
    )
}

/// Decodes a [`SynthesisStrategy`].
///
/// # Errors
///
/// Returns a [`JsonError`] for anything but the two known strategy names.
pub fn strategy_from_json(json: &Json) -> Result<SynthesisStrategy, JsonError> {
    match json {
        Json::Str(s) if s == "smt_only" => Ok(SynthesisStrategy::SmtOnly),
        Json::Str(s) if s == "heuristic_first" => Ok(SynthesisStrategy::HeuristicFirst),
        _ => Err(tsn_net::json::bad(
            "strategy is not one of \"smt_only\" / \"heuristic_first\"",
        )),
    }
}

/// Encodes a [`HeuristicStats`].
pub fn heuristic_stats_to_json(stats: &HeuristicStats) -> Json {
    Json::obj([
        ("placed_apps", Json::from(stats.placed_apps)),
        ("repaired_apps", Json::from(stats.repaired_apps)),
        ("fallback_partitions", Json::from(stats.fallback_partitions)),
    ])
}

/// Decodes a [`HeuristicStats`].
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed member.
pub fn heuristic_stats_from_json(json: &Json) -> Result<HeuristicStats, JsonError> {
    Ok(HeuristicStats {
        placed_apps: get_usize(json, "placed_apps")?,
        repaired_apps: get_usize(json, "repaired_apps")?,
        fallback_partitions: get_usize(json, "fallback_partitions")?,
    })
}

/// Encodes a [`PartitionReport`].
pub fn partition_report_to_json(p: &PartitionReport) -> Json {
    Json::obj([
        ("partition", Json::from(p.partition)),
        ("apps", Json::from(p.apps)),
        ("totals", stage_report_to_json(&p.totals)),
    ])
}

/// Decodes a [`PartitionReport`].
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed member.
pub fn partition_report_from_json(json: &Json) -> Result<PartitionReport, JsonError> {
    Ok(PartitionReport {
        partition: get_usize(json, "partition")?,
        apps: get_usize(json, "apps")?,
        totals: stage_report_from_json(json.field("totals")?)?,
    })
}

/// Encodes a [`RepairReport`].
pub fn repair_report_to_json(r: &RepairReport) -> Json {
    Json::obj([
        ("round", Json::from(r.round)),
        ("conflicting_apps", Json::from(r.conflicting_apps)),
        ("conflict_pairs", Json::from(r.conflict_pairs)),
        ("resolved_apps", Json::from(r.resolved_apps)),
        ("escalated_apps", Json::from(r.escalated_apps)),
        ("solve_time", duration_to_json(r.solve_time)),
    ])
}

/// Decodes a [`RepairReport`].
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed member.
pub fn repair_report_from_json(json: &Json) -> Result<RepairReport, JsonError> {
    Ok(RepairReport {
        round: get_usize(json, "round")?,
        conflicting_apps: get_usize(json, "conflicting_apps")?,
        conflict_pairs: get_usize(json, "conflict_pairs")?,
        resolved_apps: get_usize(json, "resolved_apps")?,
        escalated_apps: get_usize(json, "escalated_apps")?,
        solve_time: duration_from_json(json.field("solve_time")?)?,
    })
}

/// Encodes a [`ScaleReport`].
pub fn scale_report_to_json(report: &ScaleReport) -> Json {
    Json::obj([
        ("report", report_to_json(&report.report)),
        (
            "partitions",
            Json::Arr(
                report
                    .partitions
                    .iter()
                    .map(partition_report_to_json)
                    .collect(),
            ),
        ),
        (
            "repairs",
            Json::Arr(report.repairs.iter().map(repair_report_to_json).collect()),
        ),
        ("threads", Json::from(report.threads)),
        ("contention_edges", Json::from(report.contention_edges)),
        ("cut_edges", Json::from(report.cut_edges)),
        (
            "partition_wall_time",
            duration_to_json(report.partition_wall_time),
        ),
        (
            "monolithic_fallback",
            Json::Bool(report.monolithic_fallback),
        ),
        ("strategy", strategy_to_json(report.strategy)),
        ("heuristic", heuristic_stats_to_json(&report.heuristic)),
    ])
}

/// Decodes a [`ScaleReport`].
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed member.
pub fn scale_report_from_json(json: &Json) -> Result<ScaleReport, JsonError> {
    Ok(ScaleReport {
        report: report_from_json(json.field("report")?)?,
        partitions: get_arr(json, "partitions")?
            .iter()
            .map(partition_report_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        repairs: get_arr(json, "repairs")?
            .iter()
            .map(repair_report_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        threads: get_usize(json, "threads")?,
        contention_edges: get_usize(json, "contention_edges")?,
        cut_edges: get_usize(json, "cut_edges")?,
        partition_wall_time: duration_from_json(json.field("partition_wall_time")?)?,
        monolithic_fallback: get_bool(json, "monolithic_fallback")?,
        // Members introduced after the first wire revision default when
        // absent, so reports persisted by older builds still decode.
        strategy: match json.get("strategy") {
            None | Some(Json::Null) => SynthesisStrategy::SmtOnly,
            Some(value) => strategy_from_json(value)?,
        },
        heuristic: match json.get("heuristic") {
            None | Some(Json::Null) => HeuristicStats::default(),
            Some(value) => heuristic_stats_from_json(value)?,
        },
    })
}

/// A [`ScaleReport`] with every wall-clock duration zeroed, for
/// deterministic wire responses (the synthesis daemon reports elapsed time
/// separately in its envelope; the payload must be bit-identical across
/// identical requests so responses are cacheable and differential-testable).
pub fn zeroed_scale_report(report: &ScaleReport) -> ScaleReport {
    let mut out = report.clone();
    out.report.total_time = Duration::ZERO;
    for stage in &mut out.report.stages {
        stage.solve_time = Duration::ZERO;
    }
    for p in &mut out.partitions {
        p.totals.solve_time = Duration::ZERO;
    }
    for r in &mut out.repairs {
        r.solve_time = Duration::ZERO;
    }
    out.partition_wall_time = Duration::ZERO;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScaleConfig, ScaleSynthesizer};
    use tsn_control::PiecewiseLinearBound;
    use tsn_net::{builders, LinkSpec, Time};
    use tsn_synthesis::SynthesisProblem;

    fn small_scale_report() -> ScaleReport {
        let net = builders::figure1_example(LinkSpec::fast_ethernet());
        let mut problem = SynthesisProblem::new(net.topology, Time::from_micros(5));
        for i in 0..3 {
            problem
                .add_application(
                    format!("loop-{i}"),
                    net.sensors[i],
                    net.controllers[i],
                    Time::from_millis(10),
                    1500,
                    PiecewiseLinearBound::single_segment(2.0, 0.012),
                )
                .unwrap();
        }
        let config = ScaleConfig {
            target_apps_per_partition: 2,
            threads: 1,
            ..ScaleConfig::default()
        };
        ScaleSynthesizer::new(config).synthesize(&problem).unwrap()
    }

    #[test]
    fn scale_reports_round_trip() {
        let report = small_scale_report();
        let json = scale_report_to_json(&report);
        let text = json.to_string();
        let back = scale_report_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(scale_report_to_json(&back), json);
        assert_eq!(back.partitions.len(), report.partitions.len());
        assert_eq!(back.repairs.len(), report.repairs.len());
        assert_eq!(back.threads, report.threads);
        assert_eq!(back.monolithic_fallback, report.monolithic_fallback);
        assert_eq!(
            back.report.schedule.messages.len(),
            report.report.schedule.messages.len()
        );
    }

    #[test]
    fn zeroed_reports_are_deterministic() {
        let report = small_scale_report();
        let zeroed = zeroed_scale_report(&report);
        assert_eq!(zeroed.report.total_time, Duration::ZERO);
        assert!(zeroed
            .report
            .stages
            .iter()
            .all(|s| s.solve_time == Duration::ZERO));
        assert!(zeroed
            .partitions
            .iter()
            .all(|p| p.totals.solve_time == Duration::ZERO));
        assert_eq!(zeroed.partition_wall_time, Duration::ZERO);
        // Everything except the clocks is untouched.
        assert_eq!(
            zeroed.report.schedule.messages.len(),
            report.report.schedule.messages.len()
        );
        assert_eq!(zeroed.contention_edges, report.contention_edges);
    }

    #[test]
    fn malformed_scale_documents_are_rejected() {
        assert!(scale_report_from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(scale_report_from_json(&Json::parse("[]").unwrap()).is_err());
        assert!(partition_report_from_json(&Json::parse(r#"{"partition": -1}"#).unwrap()).is_err());
        assert!(strategy_from_json(&Json::parse(r#""simulated_annealing""#).unwrap()).is_err());
    }

    #[test]
    fn strategy_and_heuristic_stats_round_trip() {
        use crate::SynthesisStrategy;
        for strategy in [
            SynthesisStrategy::SmtOnly,
            SynthesisStrategy::HeuristicFirst,
        ] {
            let back = strategy_from_json(&strategy_to_json(strategy)).unwrap();
            assert_eq!(back, strategy);
        }
        let stats = crate::HeuristicStats {
            placed_apps: 12,
            repaired_apps: 3,
            fallback_partitions: 1,
        };
        let text = heuristic_stats_to_json(&stats).to_string();
        let back = heuristic_stats_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn reports_without_strategy_members_decode_with_defaults() {
        // A report persisted before the strategy members existed.
        let report = small_scale_report();
        let Json::Obj(members) = scale_report_to_json(&report) else {
            panic!("scale report encodes as an object");
        };
        let trimmed = Json::Obj(
            members
                .into_iter()
                .filter(|(key, _)| !matches!(key.as_str(), "strategy" | "heuristic"))
                .collect(),
        );
        let back = scale_report_from_json(&trimmed).unwrap();
        assert_eq!(back.strategy, crate::SynthesisStrategy::SmtOnly);
        assert_eq!(back.heuristic, crate::HeuristicStats::default());
    }
}
