//! Partitioned, parallel large-scale synthesis: thousands of time-triggered
//! control streams, solved by divide-and-conquer.
//!
//! The paper's joint routing + scheduling formulation (and its faithful port
//! in [`tsn_synthesis`]) solves tens of control loops. This crate scales the
//! same encoding to problems with hundreds to thousands of streams on
//! 32–128-switch fabrics, following the divide-and-conquer regime of
//! *"Just a Second — Scheduling Thousands of Time-Triggered Streams in
//! Large-Scale Networks"* (arXiv:2306.07710) and the per-partition
//! route/schedule co-optimization of *"Enhancing Throughput for TTEthernet
//! via Co-optimizing Routing and Scheduling"* (arXiv:2401.06579):
//!
//! 1. **Partition** ([`plan_partitions`]): a contention graph over the
//!    candidate routes groups applications that can share links, so almost
//!    all contention is *intra*-partition.
//! 2. **Parallel solve** ([`ScaleSynthesizer`]): every partition is
//!    synthesized independently on a scoped worker thread, each with its own
//!    warm-started [`tsn_smt::Model`] and incremental
//!    [`tsn_synthesis::StageEncoder`] staging.
//! 3. **Conflict repair**: the merged schedule is scanned for
//!    cross-partition link overlaps; a greedy vertex cover of the conflict
//!    graph is re-solved jointly against the pinned reservations of every
//!    other application — the freeze/pin pattern of `tsn_online`, applied
//!    offline. One feasible cover re-solve repairs every conflict.
//!
//! The merged schedule is always re-checked by
//! [`tsn_synthesis::verify_schedule`], and the result is **bit-identical for
//! every thread count**: partitioning, per-partition solving and repair are
//! all deterministic, and parallelism only changes *when* each partition is
//! solved, never *what* it produces.
//!
//! # Example
//!
//! ```
//! use tsn_control::PiecewiseLinearBound;
//! use tsn_net::{builders, LinkSpec, Time};
//! use tsn_scale::{ScaleConfig, ScaleSynthesizer};
//! use tsn_synthesis::SynthesisProblem;
//!
//! # fn main() -> Result<(), tsn_synthesis::SynthesisError> {
//! let net = builders::figure1_example(LinkSpec::fast_ethernet());
//! let mut problem = SynthesisProblem::new(net.topology, Time::from_micros(5));
//! for i in 0..3 {
//!     problem.add_application(
//!         format!("loop-{i}"),
//!         net.sensors[i],
//!         net.controllers[i],
//!         Time::from_millis(10),
//!         1500,
//!         PiecewiseLinearBound::single_segment(2.0, 0.012),
//!     )?;
//! }
//! // Force two partitions even on this small instance.
//! let config = ScaleConfig {
//!     target_apps_per_partition: 2,
//!     ..ScaleConfig::default()
//! };
//! let report = ScaleSynthesizer::new(config).synthesize(&problem)?;
//! assert!(report.all_stable());
//! assert_eq!(report.report.schedule.messages.len(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
pub mod heuristic;
mod partition;
pub mod wire;

pub use engine::{
    HeuristicStats, PartitionReport, RepairReport, ScaleConfig, ScaleReport, ScaleSynthesizer,
    SynthesisStrategy,
};
pub use partition::{plan_partitions, PartitionPlan};
