//! A minimal self-contained JSON value type with a printer and a parser.
//!
//! The build container has no registry access, so the workspace cannot pull
//! `serde_json` (the vendored `serde` is a no-op marker crate, see
//! `vendor/README.md`). Reports, schedules and online event traces are the
//! cross-process interface for future sharding, and the figure binaries emit
//! machine-readable sweeps — both need an actual wire format. This module is
//! that format: a small JSON document model with explicit `Int`/`Float`
//! variants so nanosecond timestamps round-trip exactly (an `f64` mantissa
//! would silently truncate them past 2^53).
//!
//! Higher layers implement `to_json`/`from_json` pairs on top of this (see
//! `tsn_synthesis::wire` and `tsn_online::wire`); when real `serde` becomes
//! available the `#[derive(Serialize, Deserialize)]` markers on the same
//! types take over and this module remains as the dependency-free fallback.
//!
//! # Example
//!
//! ```
//! use tsn_net::json::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::from("fig_online")),
//!     ("events", Json::from(42i64)),
//!     ("latencies", Json::Arr(vec![Json::from(1.5), Json::from(2.5)])),
//! ]);
//! let text = doc.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(doc, back);
//! assert_eq!(back.get("events").and_then(Json::as_i64), Some(42));
//! ```

use std::fmt;

/// A JSON document: the usual six value kinds, with numbers split into exact
/// integers and floats.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, printed without a decimal point and parsed exactly.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs (insertion order is preserved).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the failure.
    pub what: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Builds a decoder error (shared by every `from_json` in the workspace).
pub fn bad(what: impl Into<String>) -> JsonError {
    JsonError {
        what: what.into(),
        at: 0,
    }
}

/// Reads a required integer member.
///
/// # Errors
///
/// Returns a [`JsonError`] when the member is missing or not an integer.
pub fn get_i64(json: &Json, key: &str) -> Result<i64, JsonError> {
    json.field(key)?
        .as_i64()
        .ok_or_else(|| bad(format!("member {key:?} is not an integer")))
}

/// Reads a required non-negative integer member as `u64`.
///
/// # Errors
///
/// Returns a [`JsonError`] when the member is missing, non-integer or
/// negative.
pub fn get_u64(json: &Json, key: &str) -> Result<u64, JsonError> {
    u64::try_from(get_i64(json, key)?).map_err(|_| bad(format!("member {key:?} is negative")))
}

/// Reads a required non-negative integer member as `usize`.
///
/// # Errors
///
/// Returns a [`JsonError`] when the member is missing, non-integer or
/// negative.
pub fn get_usize(json: &Json, key: &str) -> Result<usize, JsonError> {
    usize::try_from(get_i64(json, key)?).map_err(|_| bad(format!("member {key:?} is negative")))
}

/// Reads a required numeric member as `f64` (integers are widened).
///
/// # Errors
///
/// Returns a [`JsonError`] when the member is missing or not a number.
pub fn get_f64(json: &Json, key: &str) -> Result<f64, JsonError> {
    json.field(key)?
        .as_f64()
        .ok_or_else(|| bad(format!("member {key:?} is not a number")))
}

/// Reads a required string member.
///
/// # Errors
///
/// Returns a [`JsonError`] when the member is missing or not a string.
pub fn get_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, JsonError> {
    json.field(key)?
        .as_str()
        .ok_or_else(|| bad(format!("member {key:?} is not a string")))
}

/// Reads a required Boolean member.
///
/// # Errors
///
/// Returns a [`JsonError`] when the member is missing or not a Boolean.
pub fn get_bool(json: &Json, key: &str) -> Result<bool, JsonError> {
    json.field(key)?
        .as_bool()
        .ok_or_else(|| bad(format!("member {key:?} is not a boolean")))
}

/// Reads a required array member.
///
/// # Errors
///
/// Returns a [`JsonError`] when the member is missing or not an array.
pub fn get_arr<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], JsonError> {
    json.field(key)?
        .as_arr()
        .ok_or_else(|| bad(format!("member {key:?} is not an array")))
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as i64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The value of an object member, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`get`](Json::get) but returns an error naming the missing key,
    /// for use in `from_json` decoders.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            what: format!("missing object member {key:?}"),
            at: 0,
        })
    }

    /// The integer value, if this is an `Int` (floats are not coerced).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a float (`Int` is widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The Boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document from text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                what: "trailing characters after the document".to_string(),
                at: pos,
            });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // Guarantee a float-shaped token so parsing restores the
                    // Float variant (and `v.fract() == 0.0` values survive).
                    let s = format!("{v}");
                    if s.contains(['.', 'e', 'E']) {
                        write!(f, "{s}")
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/Infinity; null is the standard fallback.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Writes `s` as a complete JSON string token (surrounding quotes included),
/// escaping quotes, backslashes and every control character below U+0020.
///
/// This is the single escaping routine of the workspace: [`Json`]'s printer
/// uses it, and any code that hand-emits JSON text (log lines, wire
/// envelopes) must route string emission through it (or [`json_escape`])
/// rather than interpolating raw strings into a format template.
///
/// # Errors
///
/// Propagates errors of the underlying writer.
pub fn write_json_escaped<W: fmt::Write>(out: &mut W, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Returns `s` as a complete JSON string token (see [`write_json_escaped`]).
///
/// # Example
///
/// ```
/// use tsn_net::json::json_escape;
///
/// assert_eq!(json_escape("a\"b\\c\nd\u{1}"), r#""a\"b\\c\nd\u0001""#);
/// ```
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_json_escaped(&mut out, s).expect("writing to a String cannot fail");
    out
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write_json_escaped(f, s)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn error(what: impl Into<String>, at: usize) -> JsonError {
    JsonError {
        what: what.into(),
        at,
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(error(format!("expected {:?}", byte as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(error("unexpected end of input", *pos)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(error("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(error("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(error(format!("expected {word:?}"), *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(error("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let high = hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&high) {
                            // High surrogate: JSON encodes astral characters
                            // as a \uD800-\uDBFF + \uDC00-\uDFFF pair. An
                            // unpaired surrogate decodes to U+FFFD.
                            let paired = bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u');
                            let low = if paired {
                                hex4(bytes, *pos + 3)
                                    .ok()
                                    .filter(|c| (0xDC00..0xE000).contains(c))
                            } else {
                                None
                            };
                            match low {
                                Some(low) => {
                                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                    *pos += 6;
                                }
                                None => out.push('\u{fffd}'),
                            }
                        } else {
                            // Low surrogates cannot start a pair and fall to
                            // U+FFFD through the from_u32 conversion.
                            out.push(char::from_u32(high).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return Err(error("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so the
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| error("invalid utf-8", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Reads four hex digits starting at `at` (the payload of a `\u` escape).
fn hex4(bytes: &[u8], at: usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| error("truncated \\u escape", at))?;
    let hex = std::str::from_utf8(hex).map_err(|_| error("invalid \\u escape", at))?;
    u32::from_str_radix(hex, 16).map_err(|_| error("invalid \\u escape", at))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| error("bad number", start))?;
    if text.is_empty() || text == "-" {
        return Err(error("expected a value", start));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| error(format!("invalid float {text:?}"), start))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| error(format!("integer out of range {text:?}"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-40_000_000),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(1.5),
            Json::Float(-0.25),
            Json::Float(3.0),
            Json::Str("hello \"world\"\n\t\\".to_string()),
            Json::Str("unicode: åäö ↦".to_string()),
        ] {
            let text = doc.to_string();
            assert_eq!(Json::parse(&text).unwrap(), doc, "text: {text}");
        }
    }

    #[test]
    fn integers_past_f64_precision_survive() {
        let big = Json::Int(9_007_199_254_740_993); // 2^53 + 1
        let back = Json::parse(&big.to_string()).unwrap();
        assert_eq!(back.as_i64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn whole_floats_stay_floats() {
        let doc = Json::Float(40.0);
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn containers_round_trip() {
        let doc = Json::obj([
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj(Vec::<(String, Json)>::new())),
            (
                "nested",
                Json::Arr(vec![
                    Json::obj([("k", Json::Int(1))]),
                    Json::Null,
                    Json::Arr(vec![Json::Bool(false)]),
                ]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": [true, 2.5], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.0));
        let arr = doc.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
        assert!(doc.field("missing").is_err());
        assert!(doc.field("a").is_ok());
    }

    #[test]
    fn parse_errors_carry_positions() {
        for bad in ["", "{", "[1,", "tru", "\"abc", "1 2", "{\"a\" 1}", "nul"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.what.is_empty(), "input {bad:?}");
        }
        assert!(Json::parse("99999999999999999999999").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let doc = Json::parse(" \n{ \"a\" : [ 1 , 2 ] , \"b\" : null }\t").unwrap();
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn nonfinite_floats_degrade_to_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn hostile_strings_round_trip() {
        // Every control character, quotes, backslashes, backslash-lookalike
        // sequences and astral characters survive print -> parse exactly.
        let mut all_controls = String::new();
        for c in 0u32..0x20 {
            all_controls.push(char::from_u32(c).unwrap());
        }
        for hostile in [
            all_controls.as_str(),
            "\" onload=\"alert(1)",
            "back\\slash \\n not a newline",
            "\\u0041 literal, not an escape",
            "newline\nreturn\rtab\tquote\"backslash\\",
            "astral: \u{1F600} \u{10FFFF}",
            "nul byte: \u{0} end",
            "{\"looks\":\"like json\"}",
            "trailing backslash \\",
        ] {
            let doc = Json::Str(hostile.to_string());
            let text = doc.to_string();
            assert!(!text.contains('\n'), "newline leaked into one-line wire");
            assert_eq!(Json::parse(&text).unwrap(), doc, "text: {text}");
        }
    }

    #[test]
    fn json_escape_matches_the_printer() {
        for s in ["plain", "quo\"te", "b\\s", "ctl\u{1}\u{1f}", "nl\n"] {
            assert_eq!(json_escape(s), Json::Str(s.to_string()).to_string());
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        // A surrogate-pair escape decodes to the astral scalar and re-prints
        // as literal UTF-8.
        let escaped = "\"\\uD83D\\uDE00\"";
        let doc = Json::parse(escaped).unwrap();
        assert_eq!(doc.as_str(), Some("\u{1F600}"));
        // Unpaired or malformed surrogates degrade to U+FFFD, never panic.
        assert_eq!(
            Json::parse(r#""\uD83D""#).unwrap().as_str(),
            Some("\u{fffd}")
        );
        assert_eq!(
            Json::parse(r#""\uD83Dx""#).unwrap().as_str(),
            Some("\u{fffd}x")
        );
        assert_eq!(
            Json::parse(r#""\uDE00""#).unwrap().as_str(),
            Some("\u{fffd}")
        );
        assert_eq!(
            Json::parse(r#""\uD83DA""#).unwrap().as_str(),
            Some("\u{fffd}A")
        );
        assert!(Json::parse(r#""\uD83"#).is_err());
    }

    #[test]
    fn typed_getters_report_missing_members() {
        let doc = Json::parse(r#"{"n": 1, "s": "x", "b": true, "a": []}"#).unwrap();
        assert_eq!(get_i64(&doc, "n").unwrap(), 1);
        assert_eq!(get_u64(&doc, "n").unwrap(), 1);
        assert_eq!(get_usize(&doc, "n").unwrap(), 1);
        assert_eq!(get_f64(&doc, "n").unwrap(), 1.0);
        assert_eq!(get_str(&doc, "s").unwrap(), "x");
        assert!(get_bool(&doc, "b").unwrap());
        assert!(get_arr(&doc, "a").unwrap().is_empty());
        for key in ["nope", "s"] {
            assert!(get_i64(&doc, key).is_err());
        }
        assert!(get_u64(&Json::obj([("n", Json::Int(-1))]), "n").is_err());
        assert!(get_str(&doc, "n").is_err());
        assert!(get_bool(&doc, "n").is_err());
        assert!(get_arr(&doc, "n").is_err());
    }
}
