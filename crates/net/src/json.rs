//! A minimal self-contained JSON value type with a printer and a parser.
//!
//! The build container has no registry access, so the workspace cannot pull
//! `serde_json` (the vendored `serde` is a no-op marker crate, see
//! `vendor/README.md`). Reports, schedules and online event traces are the
//! cross-process interface for future sharding, and the figure binaries emit
//! machine-readable sweeps — both need an actual wire format. This module is
//! that format: a small JSON document model with explicit `Int`/`Float`
//! variants so nanosecond timestamps round-trip exactly (an `f64` mantissa
//! would silently truncate them past 2^53).
//!
//! Higher layers implement `to_json`/`from_json` pairs on top of this (see
//! `tsn_synthesis::wire` and `tsn_online::wire`); when real `serde` becomes
//! available the `#[derive(Serialize, Deserialize)]` markers on the same
//! types take over and this module remains as the dependency-free fallback.
//!
//! # Example
//!
//! ```
//! use tsn_net::json::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::from("fig_online")),
//!     ("events", Json::from(42i64)),
//!     ("latencies", Json::Arr(vec![Json::from(1.5), Json::from(2.5)])),
//! ]);
//! let text = doc.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(doc, back);
//! assert_eq!(back.get("events").and_then(Json::as_i64), Some(42));
//! ```

use std::fmt;

/// A JSON document: the usual six value kinds, with numbers split into exact
/// integers and floats.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, printed without a decimal point and parsed exactly.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs (insertion order is preserved).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the failure.
    pub what: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as i64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The value of an object member, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`get`](Json::get) but returns an error naming the missing key,
    /// for use in `from_json` decoders.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            what: format!("missing object member {key:?}"),
            at: 0,
        })
    }

    /// The integer value, if this is an `Int` (floats are not coerced).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a float (`Int` is widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The Boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document from text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                what: "trailing characters after the document".to_string(),
                at: pos,
            });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // Guarantee a float-shaped token so parsing restores the
                    // Float variant (and `v.fract() == 0.0` values survive).
                    let s = format!("{v}");
                    if s.contains(['.', 'e', 'E']) {
                        write!(f, "{s}")
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/Infinity; null is the standard fallback.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn error(what: impl Into<String>, at: usize) -> JsonError {
    JsonError {
        what: what.into(),
        at,
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(error(format!("expected {:?}", byte as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(error("unexpected end of input", *pos)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(error("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(error("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(error(format!("expected {word:?}"), *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(error("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| error("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| error("invalid \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| error("invalid \\u escape", *pos))?;
                        // Surrogates are not needed by this workspace's data;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(error("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so the
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| error("invalid utf-8", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| error("bad number", start))?;
    if text.is_empty() || text == "-" {
        return Err(error("expected a value", start));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| error(format!("invalid float {text:?}"), start))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| error(format!("integer out of range {text:?}"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-40_000_000),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(1.5),
            Json::Float(-0.25),
            Json::Float(3.0),
            Json::Str("hello \"world\"\n\t\\".to_string()),
            Json::Str("unicode: åäö ↦".to_string()),
        ] {
            let text = doc.to_string();
            assert_eq!(Json::parse(&text).unwrap(), doc, "text: {text}");
        }
    }

    #[test]
    fn integers_past_f64_precision_survive() {
        let big = Json::Int(9_007_199_254_740_993); // 2^53 + 1
        let back = Json::parse(&big.to_string()).unwrap();
        assert_eq!(back.as_i64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn whole_floats_stay_floats() {
        let doc = Json::Float(40.0);
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn containers_round_trip() {
        let doc = Json::obj([
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj(Vec::<(String, Json)>::new())),
            (
                "nested",
                Json::Arr(vec![
                    Json::obj([("k", Json::Int(1))]),
                    Json::Null,
                    Json::Arr(vec![Json::Bool(false)]),
                ]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": [true, 2.5], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.0));
        let arr = doc.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
        assert!(doc.field("missing").is_err());
        assert!(doc.field("a").is_ok());
    }

    #[test]
    fn parse_errors_carry_positions() {
        for bad in ["", "{", "[1,", "tru", "\"abc", "1 2", "{\"a\" 1}", "nul"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.what.is_empty(), "input {bad:?}");
        }
        assert!(Json::parse("99999999999999999999999").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let doc = Json::parse(" \n{ \"a\" : [ 1 , 2 ] , \"b\" : null }\t").unwrap();
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn nonfinite_floats_degrade_to_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }
}
