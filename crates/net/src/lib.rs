//! Network topology modeling for TSN Ethernet synthesis.
//!
//! This crate provides the network substrate used by the stability-aware
//! routing and scheduling synthesis: a typed topology graph of Ethernet
//! switches, sensors and controllers connected by full-duplex links, a set of
//! topology builders (including the Erdős–Rényi random topologies and the
//! automotive topology used in the paper's evaluation), and path-enumeration
//! algorithms (shortest path, Yen's K-shortest paths, bounded enumeration of
//! all simple paths) that feed the route-candidate generation of the
//! synthesizer.
//!
//! # Example
//!
//! ```
//! use tsn_net::{Topology, NodeKind, LinkSpec, Time};
//!
//! # fn main() -> Result<(), tsn_net::NetError> {
//! let mut topo = Topology::new();
//! let sensor = topo.add_node("S0", NodeKind::Sensor);
//! let sw0 = topo.add_node("SW0", NodeKind::Switch);
//! let sw1 = topo.add_node("SW1", NodeKind::Switch);
//! let ctrl = topo.add_node("C0", NodeKind::Controller);
//! topo.connect(sensor, sw0, LinkSpec::fast_ethernet())?;
//! topo.connect(sw0, sw1, LinkSpec::fast_ethernet())?;
//! topo.connect(sw1, ctrl, LinkSpec::fast_ethernet())?;
//!
//! let routes = topo.k_shortest_routes(sensor, ctrl, 4)?;
//! assert_eq!(routes.len(), 1);
//! assert_eq!(routes[0].hop_count(), 3);
//! assert!(topo.link_between(sw0, sw1).is_some());
//! let _delay: Time = LinkSpec::fast_ethernet().transmission_delay(1500);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builders;
mod error;
pub mod framing;
mod id;
pub mod json;
mod link;
mod node;
mod paths;
pub mod poll;
mod route;
mod time;
mod topology;
pub mod wire;

pub use error::NetError;
pub use id::{LinkId, NodeId};
pub use link::{Link, LinkSpec};
pub use node::{Node, NodeKind};
pub use route::Route;
pub use time::Time;
pub use topology::Topology;
