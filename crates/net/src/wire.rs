//! Wire codecs for the network substrate: topologies, link specifications
//! and node kinds as JSON documents.
//!
//! The synthesis daemon (`tsn_service`) receives whole problems over the
//! wire, so the network itself needs a codec. A topology is encoded as its
//! node list plus one entry per *physical* link, in creation order; decoding
//! replays [`Topology::add_node`] / [`Topology::connect`] in that order,
//! which reproduces the exact same [`NodeId`](crate::NodeId) /
//! [`LinkId`](crate::LinkId) assignment — encoder and decoder round-trip
//! bit-exactly, including ids.

use crate::json::{bad, get_arr, get_i64, get_str, get_u64, Json, JsonError};
use crate::{LinkSpec, NodeKind, Time, Topology};

/// Encodes a [`Time`] as exact integer nanoseconds.
pub fn time_to_json(t: Time) -> Json {
    Json::Int(t.as_nanos())
}

/// Decodes a [`Time`] from integer nanoseconds.
///
/// # Errors
///
/// Returns a [`JsonError`] when the value is not an integer.
pub fn time_from_json(json: &Json) -> Result<Time, JsonError> {
    json.as_i64()
        .map(Time::from_nanos)
        .ok_or_else(|| bad("time is not an integer nanosecond count"))
}

/// Encodes a [`NodeKind`] as its lowercase name.
pub fn node_kind_to_json(kind: NodeKind) -> Json {
    Json::from(match kind {
        NodeKind::Switch => "switch",
        NodeKind::Sensor => "sensor",
        NodeKind::Controller => "controller",
    })
}

/// Decodes a [`NodeKind`] from its lowercase name.
///
/// # Errors
///
/// Returns a [`JsonError`] for unknown kind names.
pub fn node_kind_from_json(json: &Json) -> Result<NodeKind, JsonError> {
    match json.as_str() {
        Some("switch") => Ok(NodeKind::Switch),
        Some("sensor") => Ok(NodeKind::Sensor),
        Some("controller") => Ok(NodeKind::Controller),
        Some(other) => Err(bad(format!("unknown node kind {other:?}"))),
        None => Err(bad("node kind is not a string")),
    }
}

/// Encodes a [`LinkSpec`] as data rate and propagation delay.
pub fn link_spec_to_json(spec: LinkSpec) -> Json {
    Json::obj([
        ("rate_bps", Json::Int(spec.data_rate_bps() as i64)),
        ("prop_ns", time_to_json(spec.propagation_delay())),
    ])
}

/// Decodes a [`LinkSpec`].
///
/// # Errors
///
/// Returns a [`JsonError`] for malformed members or a non-positive data
/// rate.
pub fn link_spec_from_json(json: &Json) -> Result<LinkSpec, JsonError> {
    let rate = get_u64(json, "rate_bps")?;
    if rate == 0 {
        return Err(bad("link data rate must be positive"));
    }
    Ok(LinkSpec::new(rate, time_from_json(json.field("prop_ns")?)?))
}

/// Encodes a [`Topology`]: the node list plus one `{a, b, spec}` entry per
/// physical link, both in creation order.
pub fn topology_to_json(topology: &Topology) -> Json {
    let nodes = topology
        .nodes()
        .map(|n| {
            Json::obj([
                ("name", Json::from(n.name())),
                ("kind", node_kind_to_json(n.kind())),
            ])
        })
        .collect();
    // Each physical link appears as two directed links; keep the first
    // direction of each pair (creation order), which `connect` re-creates.
    let links = topology
        .links()
        .filter(|l| l.id().index() < l.reverse().index())
        .map(|l| {
            Json::obj([
                ("a", Json::from(l.source().index())),
                ("b", Json::from(l.target().index())),
                ("spec", link_spec_to_json(l.spec())),
            ])
        })
        .collect();
    Json::obj([("nodes", Json::Arr(nodes)), ("links", Json::Arr(links))])
}

/// Decodes a [`Topology`] by replaying node and link creation.
///
/// # Errors
///
/// Returns a [`JsonError`] for malformed members or a link list that
/// violates the topology invariants (unknown endpoints, duplicate links,
/// end stations with more than one port).
pub fn topology_from_json(json: &Json) -> Result<Topology, JsonError> {
    let mut topology = Topology::new();
    for node in get_arr(json, "nodes")? {
        topology.add_node(
            get_str(node, "name")?,
            node_kind_from_json(node.field("kind")?)?,
        );
    }
    let node_id = |json: &Json, key: &str| -> Result<crate::NodeId, JsonError> {
        u32::try_from(get_i64(json, key)?)
            .map(crate::NodeId::new)
            .map_err(|_| bad(format!("member {key:?} is not a valid node index")))
    };
    for link in get_arr(json, "links")? {
        let a = node_id(link, "a")?;
        let b = node_id(link, "b")?;
        let spec = link_spec_from_json(link.field("spec")?)?;
        topology
            .connect(a, b, spec)
            .map_err(|e| bad(format!("invalid link: {e}")))?;
    }
    Ok(topology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn figure1_topology_round_trips_bit_exactly() {
        let net = builders::figure1_example(LinkSpec::fast_ethernet());
        let json = topology_to_json(&net.topology);
        let text = json.to_string();
        let back = topology_from_json(&Json::parse(&text).unwrap()).unwrap();
        // Same document again — ids, names, kinds and specs all survived.
        assert_eq!(topology_to_json(&back), json);
        assert_eq!(back.node_count(), net.topology.node_count());
        assert_eq!(back.link_count(), net.topology.link_count());
        for (a, b) in net.topology.links().zip(back.links()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.source(), b.source());
            assert_eq!(a.target(), b.target());
            assert_eq!(a.reverse(), b.reverse());
            assert_eq!(a.spec(), b.spec());
        }
        assert!(back.is_connected());
        // The rebuilt lookup table works without rebuild_index().
        for l in net.topology.links() {
            assert_eq!(back.link_between(l.source(), l.target()), Some(l.id()));
        }
    }

    #[test]
    fn mixed_speed_topologies_keep_their_specs() {
        let mut t = Topology::new();
        let s = t.add_node("s", NodeKind::Sensor);
        let sw0 = t.add_node("sw0", NodeKind::Switch);
        let sw1 = t.add_node("sw1", NodeKind::Switch);
        let c = t.add_node("c", NodeKind::Controller);
        t.connect(s, sw0, LinkSpec::fast_ethernet()).unwrap();
        t.connect(sw0, sw1, LinkSpec::gigabit_ethernet()).unwrap();
        t.connect(sw1, c, LinkSpec::new(10_000_000, Time::from_nanos(50)))
            .unwrap();
        let back = topology_from_json(&topology_to_json(&t)).unwrap();
        assert_eq!(topology_to_json(&back), topology_to_json(&t));
        let l = back.link_between(sw1, c).unwrap();
        assert_eq!(
            back.link(l).spec().propagation_delay(),
            Time::from_nanos(50)
        );
    }

    #[test]
    fn malformed_topologies_are_rejected() {
        for bad_doc in [
            r#"{"nodes": [], "links": [{"a":0,"b":1,"spec":{"rate_bps":1,"prop_ns":0}}]}"#,
            r#"{"nodes": [{"name":"x","kind":"router"}], "links": []}"#,
            r#"{"nodes": [{"name":"x"}], "links": []}"#,
            r#"{"nodes": 3, "links": []}"#,
            r#"{"links": []}"#,
            r#"{"nodes": [{"name":"a","kind":"switch"},{"name":"b","kind":"switch"}],
                "links": [{"a":0,"b":1,"spec":{"rate_bps":0,"prop_ns":0}}]}"#,
        ] {
            let doc = Json::parse(bad_doc).unwrap();
            assert!(topology_from_json(&doc).is_err(), "accepted: {bad_doc}");
        }
    }

    #[test]
    fn self_and_duplicate_links_fail_decoding() {
        let two = r#"{"nodes": [{"name":"a","kind":"switch"},{"name":"b","kind":"switch"}],
            "links": [{"a":0,"b":1,"spec":{"rate_bps":1000,"prop_ns":0}},
                      {"a":1,"b":0,"spec":{"rate_bps":1000,"prop_ns":0}}]}"#;
        assert!(topology_from_json(&Json::parse(two).unwrap()).is_err());
    }
}
