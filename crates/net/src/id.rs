//! Strongly typed identifiers for topology elements.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node (switch, sensor or controller) inside a [`Topology`].
///
/// Node ids are dense indexes assigned in insertion order, so they can be
/// used directly to index per-node side tables.
///
/// [`Topology`]: crate::Topology
///
/// # Example
///
/// ```
/// use tsn_net::{NodeKind, Topology};
///
/// let mut topo = Topology::new();
/// let a = topo.add_node("A", NodeKind::Switch);
/// let b = topo.add_node("B", NodeKind::Switch);
/// assert_eq!(a.index(), 0);
/// assert_eq!(b.index(), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a *directed* link (an egress port) inside a [`Topology`].
///
/// Every full-duplex physical connection contributes two directed links, one
/// per direction. Scheduling and contention are per directed link, matching
/// the egress-port queues of an IEEE 802.1Qbv switch.
///
/// [`Topology`]: crate::Topology
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// Creates a link id from a raw dense index.
    pub const fn new(index: u32) -> Self {
        LinkId(index)
    }

    /// The dense index of this link.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(0) < NodeId::new(1));
        assert!(LinkId::new(3) > LinkId::new(2));
        assert_eq!(NodeId::new(7).index(), 7);
        assert_eq!(LinkId::new(9).index(), 9);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(4).to_string(), "n4");
        assert_eq!(LinkId::new(11).to_string(), "l11");
    }
}
