//! Topology builders: regular structures, Erdős–Rényi random graphs and the
//! automotive backbone used by the paper's evaluation.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{LinkSpec, NetError, NodeId, NodeKind, Topology};

/// A topology together with the sensors and controllers attached to it, in
/// the order they were created.
///
/// This is the unit consumed by the synthesis problem builders: application
/// `i` uses `sensors[i]` as its source and `controllers[i]` as destination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuiltNetwork {
    /// The network topology.
    pub topology: Topology,
    /// Sensor end stations, one per prospective control application.
    pub sensors: Vec<NodeId>,
    /// Controller end stations, one per prospective control application.
    pub controllers: Vec<NodeId>,
}

impl BuiltNetwork {
    /// The number of sensor/controller pairs available for applications.
    pub fn application_slots(&self) -> usize {
        self.sensors.len().min(self.controllers.len())
    }
}

/// Builds a chain of `n` switches: `sw0 - sw1 - ... - sw(n-1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn switch_line(n: usize, spec: LinkSpec) -> (Topology, Vec<NodeId>) {
    assert!(n > 0, "a switch line needs at least one switch");
    let mut topo = Topology::new();
    let switches: Vec<NodeId> = (0..n)
        .map(|i| topo.add_node(format!("SW{i}"), NodeKind::Switch))
        .collect();
    for w in switches.windows(2) {
        topo.connect(w[0], w[1], spec)
            .expect("line links are unique");
    }
    (topo, switches)
}

/// Builds a ring of `n` switches.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn switch_ring(n: usize, spec: LinkSpec) -> (Topology, Vec<NodeId>) {
    assert!(n >= 3, "a ring needs at least three switches");
    let (mut topo, switches) = switch_line(n, spec);
    topo.connect(switches[n - 1], switches[0], spec)
        .expect("closing link is unique");
    (topo, switches)
}

/// Builds an `rows x cols` grid (mesh) of switches with horizontal and
/// vertical links.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn switch_grid(rows: usize, cols: usize, spec: LinkSpec) -> (Topology, Vec<NodeId>) {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut topo = Topology::new();
    let mut switches = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            switches.push(topo.add_node(format!("SW{r}_{c}"), NodeKind::Switch));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            if c + 1 < cols {
                topo.connect(switches[idx], switches[idx + 1], spec)
                    .expect("grid links are unique");
            }
            if r + 1 < rows {
                topo.connect(switches[idx], switches[idx + cols], spec)
                    .expect("grid links are unique");
            }
        }
    }
    (topo, switches)
}

/// The three switch layers of a [`fat_tree`] fabric.
///
/// End stations should attach to [`edge`](FatTreeLayers::edge) switches only
/// (as hosts do in a data-center fat-tree); the aggregation and core layers
/// exist to provide many equal-length alternative routes between edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FatTreeLayers {
    /// Core switches, `(pods / 2)^2` of them.
    pub core: Vec<NodeId>,
    /// Aggregation switches, `pods / 2` per pod.
    pub aggregation: Vec<NodeId>,
    /// Edge switches, `pods / 2` per pod — the attachment points.
    pub edge: Vec<NodeId>,
}

impl FatTreeLayers {
    /// All switches of the fabric, core first, in creation order.
    pub fn all(&self) -> Vec<NodeId> {
        let mut v = self.core.clone();
        v.extend_from_slice(&self.aggregation);
        v.extend_from_slice(&self.edge);
        v
    }

    /// The total switch count of the fabric: `5 * (pods / 2)^2` for `pods`
    /// pods (e.g. 20 for 4 pods, 45 for 6, 80 for 8).
    pub fn switch_count(&self) -> usize {
        self.core.len() + self.aggregation.len() + self.edge.len()
    }
}

/// The pod count whose [`fat_tree`] has a total switch count closest to
/// `switches` (inverting the `5 * (pods / 2)^2` relation). The result is
/// always a valid pod count — even and at least 4 — chosen as the nearer of
/// the two adjacent even candidates.
///
/// This is the one place that inversion lives — workload generators and
/// scenario grids that take a target switch count go through it.
pub fn fat_tree_pods_for(switches: usize) -> usize {
    let raw = (switches as f64 / 5.0).sqrt() * 2.0;
    let below = (((raw / 2.0).floor() as usize) * 2).max(4);
    let above = below + 2;
    let count = |pods: usize| 5 * (pods / 2) * (pods / 2);
    if switches.abs_diff(count(below)) <= switches.abs_diff(count(above)) {
        below
    } else {
        above
    }
}

/// Builds a `pods`-ary fat-tree switch fabric (the standard three-layer
/// data-center topology): `(pods / 2)^2` core switches, and per pod
/// `pods / 2` aggregation plus `pods / 2` edge switches. Within a pod the
/// aggregation and edge layers form a complete bipartite graph; aggregation
/// switch `a` of every pod connects to the core switches
/// `a * pods/2 .. (a+1) * pods/2`.
///
/// Any two edge switches in different pods are connected by `(pods / 2)^2`
/// equal-length routes, which is exactly the path diversity the large-scale
/// partitioned synthesis exploits to keep partitions low-contention.
///
/// `pods` is rounded up to the next even value and to at least 4.
pub fn fat_tree(pods: usize, spec: LinkSpec) -> (Topology, FatTreeLayers) {
    let pods = pods.max(4).next_multiple_of(2);
    let half = pods / 2;
    let mut topo = Topology::new();
    let core: Vec<NodeId> = (0..half * half)
        .map(|i| topo.add_node(format!("CORE{i}"), NodeKind::Switch))
        .collect();
    let mut aggregation = Vec::with_capacity(pods * half);
    let mut edge = Vec::with_capacity(pods * half);
    for p in 0..pods {
        let aggs: Vec<NodeId> = (0..half)
            .map(|a| topo.add_node(format!("AGG{p}_{a}"), NodeKind::Switch))
            .collect();
        let edges: Vec<NodeId> = (0..half)
            .map(|e| topo.add_node(format!("EDGE{p}_{e}"), NodeKind::Switch))
            .collect();
        for (a, &agg) in aggs.iter().enumerate() {
            // Complete bipartite pod wiring.
            for &ed in &edges {
                topo.connect(agg, ed, spec).expect("pod links are unique");
            }
            // Each aggregation switch owns a contiguous slice of the core.
            for c in 0..half {
                topo.connect(agg, core[a * half + c], spec)
                    .expect("core links are unique");
            }
        }
        aggregation.extend(aggs);
        edge.extend(edges);
    }
    (
        topo,
        FatTreeLayers {
            core,
            aggregation,
            edge,
        },
    )
}

/// Builds a connected Erdős–Rényi random graph over `n` switches: every pair
/// of switches is connected with probability `p`, and a random spanning tree
/// is added first so the result is always connected (the paper generates its
/// Figure 7 topologies "randomly based on the Erdős–Rényi graph model" and
/// needs them connected to route at all).
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not within `[0, 1]`.
pub fn erdos_renyi_switches<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    spec: LinkSpec,
    rng: &mut R,
) -> (Topology, Vec<NodeId>) {
    assert!(n > 0, "need at least one switch");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut topo = Topology::new();
    let switches: Vec<NodeId> = (0..n)
        .map(|i| topo.add_node(format!("SW{i}"), NodeKind::Switch))
        .collect();
    // Random spanning tree: connect node i to a random earlier node.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let (a, b) = (switches[order[i]], switches[order[j]]);
        let _ = topo.connect(a, b, spec);
    }
    // Extra Erdős–Rényi edges.
    for i in 0..n {
        for j in (i + 1)..n {
            if topo.link_between(switches[i], switches[j]).is_none() && rng.gen_bool(p) {
                let _ = topo.connect(switches[i], switches[j], spec);
            }
        }
    }
    (topo, switches)
}

/// Attaches `count` sensors and `count` controllers to random switches of an
/// existing switch fabric, returning the completed [`BuiltNetwork`].
pub fn attach_end_stations<R: Rng + ?Sized>(
    mut topology: Topology,
    switches: &[NodeId],
    count: usize,
    spec: LinkSpec,
    rng: &mut R,
) -> BuiltNetwork {
    let mut sensors = Vec::with_capacity(count);
    let mut controllers = Vec::with_capacity(count);
    for i in 0..count {
        let s = topology.add_node(format!("S{i}"), NodeKind::Sensor);
        let sw = switches[rng.gen_range(0..switches.len())];
        topology
            .connect(s, sw, spec)
            .expect("new end station has no prior link");
        sensors.push(s);
    }
    for i in 0..count {
        let c = topology.add_node(format!("C{i}"), NodeKind::Controller);
        let sw = switches[rng.gen_range(0..switches.len())];
        topology
            .connect(c, sw, spec)
            .expect("new end station has no prior link");
        controllers.push(c);
    }
    BuiltNetwork {
        topology,
        sensors,
        controllers,
    }
}

/// The example network of the paper's Figure 1: 14 nodes, 8 Ethernet switches
/// connecting 3 sensors to 3 controllers.
///
/// The exact wiring of Figure 1 is not fully specified in the paper; this
/// builder reconstructs a faithful equivalent — an 8-switch two-row backbone
/// with cross links offering several alternative routes between each
/// sensor/controller pair (which is what the routing exploration needs).
pub fn figure1_example(spec: LinkSpec) -> BuiltNetwork {
    let BuiltNetwork {
        topology,
        mut sensors,
        mut controllers,
    } = automotive_backbone(3, 3, spec);
    sensors.truncate(3);
    controllers.truncate(3);
    BuiltNetwork {
        topology,
        sensors,
        controllers,
    }
}

/// The automotive backbone used for the paper's case study: 8 Ethernet
/// switches arranged as two redundant rows of four with vertical and diagonal
/// cross links (zonal automotive architectures are built this way so every
/// pair of zones has several disjoint routes), with `sensor_count` sensors
/// and `controller_count` controllers distributed round-robin over the
/// switches.
pub fn automotive_backbone(
    sensor_count: usize,
    controller_count: usize,
    spec: LinkSpec,
) -> BuiltNetwork {
    let mut topo = Topology::new();
    let switches: Vec<NodeId> = (0..8)
        .map(|i| topo.add_node(format!("SW{i}"), NodeKind::Switch))
        .collect();
    // Two rows of four:   SW0 - SW1 - SW2 - SW3
    //                      |  X  |     |  X  |
    //                     SW4 - SW5 - SW6 - SW7
    let row_links = [
        (0, 1),
        (1, 2),
        (2, 3),
        (4, 5),
        (5, 6),
        (6, 7),
        // vertical links
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7),
        // diagonal cross links at both ends
        (0, 5),
        (1, 4),
        (2, 7),
        (3, 6),
    ];
    for (a, b) in row_links {
        topo.connect(switches[a], switches[b], spec)
            .expect("backbone links are unique");
    }
    let mut sensors = Vec::with_capacity(sensor_count);
    for i in 0..sensor_count {
        let s = topo.add_node(format!("S{i}"), NodeKind::Sensor);
        // Sensors attach to the top row, spread round-robin.
        let sw = switches[i % 4];
        topo.connect(s, sw, spec).expect("sensor link is unique");
        sensors.push(s);
    }
    let mut controllers = Vec::with_capacity(controller_count);
    for i in 0..controller_count {
        let c = topo.add_node(format!("C{i}"), NodeKind::Controller);
        // Controllers attach to the bottom row, offset so that routes cross
        // the backbone.
        let sw = switches[4 + ((i + 2) % 4)];
        topo.connect(c, sw, spec)
            .expect("controller link is unique");
        controllers.push(c);
    }
    BuiltNetwork {
        topology: topo,
        sensors,
        controllers,
    }
}

/// Validates that a built network can route every application: each
/// sensor/controller pair `i` must have at least one route.
///
/// # Errors
///
/// Returns the first routing error encountered.
pub fn validate_routability(network: &BuiltNetwork) -> Result<(), NetError> {
    for (s, c) in network.sensors.iter().zip(network.controllers.iter()) {
        network.topology.shortest_route(*s, *c)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_ring_grid_shapes() {
        let (line, sw) = switch_line(5, LinkSpec::fast_ethernet());
        assert_eq!(line.node_count(), 5);
        assert_eq!(line.physical_link_count(), 4);
        assert_eq!(sw.len(), 5);
        assert!(line.is_connected());

        let (ring, _) = switch_ring(5, LinkSpec::fast_ethernet());
        assert_eq!(ring.physical_link_count(), 5);
        assert!(ring.is_connected());

        let (grid, sw) = switch_grid(3, 4, LinkSpec::fast_ethernet());
        assert_eq!(sw.len(), 12);
        assert_eq!(grid.physical_link_count(), 3 * 3 + 2 * 4);
        assert!(grid.is_connected());
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_ring_rejected() {
        let _ = switch_ring(2, LinkSpec::fast_ethernet());
    }

    #[test]
    fn fat_tree_has_standard_shape() {
        for (pods, switches) in [(4usize, 20usize), (6, 45), (8, 80)] {
            let (topo, layers) = fat_tree(pods, LinkSpec::gigabit_ethernet());
            let half = pods / 2;
            assert_eq!(layers.core.len(), half * half);
            assert_eq!(layers.aggregation.len(), pods * half);
            assert_eq!(layers.edge.len(), pods * half);
            assert_eq!(layers.switch_count(), switches);
            assert_eq!(topo.node_count(), switches);
            assert_eq!(layers.all().len(), switches);
            // Pod wiring (pods * half^2) plus core wiring (pods * half^2).
            assert_eq!(topo.physical_link_count(), 2 * pods * half * half);
            assert!(topo.is_connected());
            // Cross-pod edge pairs see the full core-level path diversity.
            let routes = topo
                .k_shortest_routes(layers.edge[0], layers.edge[half], half * half)
                .unwrap();
            assert_eq!(routes.len(), half * half);
            for r in &routes {
                assert_eq!(r.links().len(), 4, "edge-agg-core-agg-edge");
            }
        }
        // Degenerate parameters are rounded up to the smallest fat-tree.
        let (_, layers) = fat_tree(0, LinkSpec::fast_ethernet());
        assert_eq!(layers.switch_count(), 20);
        let (_, layers) = fat_tree(5, LinkSpec::fast_ethernet());
        assert_eq!(layers.switch_count(), 45);
    }

    #[test]
    fn fat_tree_pods_for_picks_the_closest_valid_configuration() {
        // Exact switch counts invert exactly.
        for (pods, switches) in [(4usize, 20usize), (6, 45), (8, 80), (10, 125)] {
            assert_eq!(fat_tree_pods_for(switches), pods);
        }
        // In-between targets pick the nearer of the adjacent even pod
        // counts: 32 is closer to 20 (4 pods) than to 45 (6 pods).
        assert_eq!(fat_tree_pods_for(32), 4);
        assert_eq!(fat_tree_pods_for(33), 6);
        assert_eq!(fat_tree_pods_for(128), 10);
        // The result is always a buildable pod count (even, >= 4), so
        // fat_tree never re-rounds it.
        for switches in [0, 1, 19, 21, 44, 46, 79, 81, 200] {
            let pods = fat_tree_pods_for(switches);
            assert!(
                pods >= 4 && pods.is_multiple_of(2),
                "switches {switches} -> {pods}"
            );
            let (_, layers) = fat_tree(pods, LinkSpec::fast_ethernet());
            assert_eq!(layers.switch_count(), 5 * (pods / 2) * (pods / 2));
        }
    }

    #[test]
    fn erdos_renyi_is_connected_for_any_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        for &p in &[0.0, 0.1, 0.5, 1.0] {
            let (topo, sw) = erdos_renyi_switches(15, p, LinkSpec::fast_ethernet(), &mut rng);
            assert!(topo.is_connected(), "p={p} must still be connected");
            assert_eq!(sw.len(), 15);
            assert!(topo.physical_link_count() >= 14, "spanning tree present");
        }
        // p = 1.0 must produce the complete graph.
        let (topo, _) = erdos_renyi_switches(6, 1.0, LinkSpec::fast_ethernet(), &mut rng);
        assert_eq!(topo.physical_link_count(), 6 * 5 / 2);
    }

    #[test]
    fn attach_end_stations_builds_routable_network() {
        let mut rng = StdRng::seed_from_u64(7);
        let (topo, switches) = erdos_renyi_switches(15, 0.25, LinkSpec::fast_ethernet(), &mut rng);
        let net = attach_end_stations(topo, &switches, 10, LinkSpec::fast_ethernet(), &mut rng);
        assert_eq!(net.sensors.len(), 10);
        assert_eq!(net.controllers.len(), 10);
        assert_eq!(net.application_slots(), 10);
        assert_eq!(net.topology.node_count(), 35); // 15 switches + 20 end stations
        validate_routability(&net).unwrap();
    }

    #[test]
    fn figure1_has_fourteen_nodes() {
        let net = figure1_example(LinkSpec::automotive_10mbps());
        assert_eq!(net.topology.node_count(), 14);
        assert_eq!(net.topology.switches().len(), 8);
        assert_eq!(net.sensors.len(), 3);
        assert_eq!(net.controllers.len(), 3);
        validate_routability(&net).unwrap();
        // Every application must have several alternative routes for the
        // route-subset heuristic to be meaningful.
        for (s, c) in net.sensors.iter().zip(net.controllers.iter()) {
            let routes = net.topology.k_shortest_routes(*s, *c, 4).unwrap();
            assert!(
                routes.len() >= 3,
                "expected at least 3 routes, got {}",
                routes.len()
            );
        }
    }

    #[test]
    fn automotive_backbone_scales_to_case_study_size() {
        let net = automotive_backbone(20, 20, LinkSpec::automotive_10mbps());
        assert_eq!(net.topology.switches().len(), 8);
        assert_eq!(net.sensors.len(), 20);
        assert_eq!(net.controllers.len(), 20);
        validate_routability(&net).unwrap();
    }
}
