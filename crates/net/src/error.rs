//! Error type of the network-topology crate.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced by topology construction and path queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A node id does not belong to the topology.
    UnknownNode(NodeId),
    /// An attempt was made to connect a node to itself.
    SelfLoop(NodeId),
    /// The two nodes are already connected by a physical link.
    DuplicateLink(NodeId, NodeId),
    /// An end station (sensor or controller) would get more than one port.
    EndStationDegree(NodeId),
    /// No route exists between the requested source and destination.
    NoRoute {
        /// The requested source node.
        source: NodeId,
        /// The requested destination node.
        destination: NodeId,
    },
    /// A route was requested between nodes of invalid kinds (for example a
    /// route ending in a sensor).
    InvalidEndpoints {
        /// The requested source node.
        source: NodeId,
        /// The requested destination node.
        destination: NodeId,
    },
    /// A path given to route validation is not connected in the topology.
    DisconnectedPath {
        /// The first node of the offending hop.
        from: NodeId,
        /// The second node of the offending hop.
        to: NodeId,
    },
    /// A path visits the same node more than once.
    RepeatedNode(NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::SelfLoop(n) => write!(f, "cannot connect node {n} to itself"),
            NetError::DuplicateLink(a, b) => {
                write!(f, "nodes {a} and {b} are already connected")
            }
            NetError::EndStationDegree(n) => {
                write!(f, "end station {n} cannot have more than one link")
            }
            NetError::NoRoute {
                source,
                destination,
            } => write!(f, "no route from {source} to {destination}"),
            NetError::InvalidEndpoints {
                source,
                destination,
            } => write!(
                f,
                "invalid route endpoints: {source} must be a sensor or switch and {destination} a controller or switch"
            ),
            NetError::DisconnectedPath { from, to } => {
                write!(f, "path hop {from} -> {to} is not a link of the topology")
            }
            NetError::RepeatedNode(n) => write!(f, "path visits node {n} more than once"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetError::NoRoute {
            source: NodeId::new(1),
            destination: NodeId::new(2),
        };
        assert_eq!(e.to_string(), "no route from n1 to n2");
        let e = NetError::SelfLoop(NodeId::new(3));
        assert!(e.to_string().contains("itself"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<NetError>();
    }
}
