//! Newline-delimited framing shared by every wire endpoint.
//!
//! The daemon and the router speak the same line protocol: one JSON request
//! per `\n`-terminated line, one JSON response per line. This module is the
//! single implementation of that framing — a capped blocking reader for
//! client-side round trips ([`read_one_line`]) and a capped nonblocking
//! accumulator for the event loop ([`FrameReader`]).
//!
//! Both readers enforce [`MAX_LINE_BYTES`]. The historical implementations
//! (one copy in the service, one drifted copy in the router) grew their
//! buffer without bound on a never-terminated line, so a single hostile
//! client writing an endless stream of non-newline bytes could OOM the
//! daemon. Here the cap is checked while the line is still being
//! accumulated: the reader reports [`LineRead::TooLong`] (or
//! [`FrameTooLong`]) as soon as the cap is crossed, before the
//! oversized frame is ever fully buffered.

use std::io::{BufRead, ErrorKind, Read};

/// Hard cap on one wire frame (one newline-terminated line), in bytes.
///
/// 16 MiB comfortably holds the largest legitimate frames (bulk
/// `migrate_in` session snapshots and event backlogs) while bounding the
/// memory a single connection can pin.
pub const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Outcome of one [`read_one_line`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineRead {
    /// A full line (newline stripped, trailing `\r` stripped) is in the
    /// buffer.
    Line,
    /// The read timed out mid-line; partial data stays buffered — call
    /// again.
    WouldBlock,
    /// The peer closed the connection cleanly with no buffered partial
    /// line.
    Eof,
    /// The connection broke (reset, aborted, …).
    Failed,
    /// The line under accumulation crossed the byte cap. The buffer holds
    /// the truncated prefix; the connection should be answered with a
    /// typed `line_too_long` error and closed.
    TooLong,
}

/// Reads until `buf` holds one full line (newline stripped), never
/// buffering more than `max` bytes of it.
///
/// Partial data read before a timeout stays in `buf` across calls, so the
/// caller can poll a socket with a read timeout and retain progress. A
/// final unterminated line before EOF is returned as [`LineRead::Line`].
///
/// Unlike `BufRead::read_until`, the cap is enforced *during*
/// accumulation: the function consumes at most one internal buffer fill
/// past `max` before reporting [`LineRead::TooLong`], so a hostile
/// never-terminated line cannot grow `buf` without bound.
pub fn read_one_line<R: Read>(
    reader: &mut std::io::BufReader<R>,
    buf: &mut Vec<u8>,
    max: usize,
) -> LineRead {
    loop {
        if buf.len() > max {
            return LineRead::TooLong;
        }
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                return if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                };
            }
            Ok(chunk) => chunk,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return LineRead::WouldBlock;
            }
            Err(_) => return LineRead::Failed,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return LineRead::Line;
            }
            None => {
                let take = chunk.len().min(max + 1 - buf.len());
                buf.extend_from_slice(&chunk[..take]);
                reader.consume(take);
                // Loop: the cap check at the top fires if we just crossed
                // it, otherwise more data may follow.
            }
        }
    }
}

/// Why a [`FrameReader`] refused to produce a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLong {
    /// The cap that was exceeded.
    pub limit: usize,
}

/// Alias kept for readability at `FrameReader::next_line` call sites.
pub type FrameError = FrameTooLong;

/// What one nonblocking [`FrameReader::fill`] pass observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillStatus {
    /// At least one byte arrived (complete lines may now be extractable).
    ReadSome,
    /// The socket has no data right now.
    WouldBlock,
    /// The peer closed its write side. Already-buffered complete lines are
    /// still extractable.
    Eof,
    /// The connection broke.
    Failed,
}

/// Capped accumulator turning nonblocking socket reads into complete
/// lines, for the `poll(2)` event loop.
///
/// Call [`fill`](Self::fill) when the socket polls readable, then drain
/// [`next_line`](Self::next_line) until it returns `Ok(None)`.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes already scanned for `\n` (resume point for the next scan).
    scanned: usize,
    max: usize,
    eof: bool,
}

impl FrameReader {
    /// A reader enforcing a `max`-byte frame cap.
    pub fn new(max: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            scanned: 0,
            max,
            eof: false,
        }
    }

    /// Whether the peer has closed its write side.
    pub fn at_eof(&self) -> bool {
        self.eof
    }

    /// Bytes currently buffered awaiting a newline.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pulls whatever the nonblocking `reader` has, until it would block,
    /// hits EOF, or the buffer crosses the cap (the oversized condition is
    /// then reported by [`next_line`](Self::next_line)).
    pub fn fill<R: Read>(&mut self, reader: &mut R) -> FillStatus {
        let mut chunk = [0u8; 16 * 1024];
        let mut got_any = false;
        loop {
            if self.buf.len() > self.max {
                // Already oversized — stop pulling; next_line reports it.
                return FillStatus::ReadSome;
            }
            match reader.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return FillStatus::Eof;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    got_any = true;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    return if got_any {
                        FillStatus::ReadSome
                    } else {
                        FillStatus::WouldBlock
                    };
                }
                Err(_) => return FillStatus::Failed,
            }
        }
    }

    /// Extracts the next complete line (newline and trailing `\r`
    /// stripped), or reports that the frame under accumulation crossed the
    /// cap.
    ///
    /// `Ok(None)` means no complete line is buffered yet.
    pub fn next_line(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let pos = self.scanned + rel;
                if pos > self.max {
                    return Err(FrameTooLong { limit: self.max });
                }
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                Ok(Some(line))
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > self.max {
                    Err(FrameTooLong { limit: self.max })
                } else {
                    Ok(None)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn blocking_reader_splits_lines_and_strips_crlf() {
        let data: &[u8] = b"alpha\r\nbeta\ngamma";
        let mut reader = BufReader::new(data);
        let mut buf = Vec::new();
        assert_eq!(read_one_line(&mut reader, &mut buf, 1024), LineRead::Line);
        assert_eq!(buf, b"alpha");
        buf.clear();
        assert_eq!(read_one_line(&mut reader, &mut buf, 1024), LineRead::Line);
        assert_eq!(buf, b"beta");
        buf.clear();
        // Final unterminated line before EOF still counts as a line.
        assert_eq!(read_one_line(&mut reader, &mut buf, 1024), LineRead::Line);
        assert_eq!(buf, b"gamma");
        buf.clear();
        assert_eq!(read_one_line(&mut reader, &mut buf, 1024), LineRead::Eof);
    }

    #[test]
    fn blocking_reader_caps_unterminated_lines() {
        // 1 MiB of 'a' with no newline, cap at 4 KiB: the reader must stop
        // near the cap instead of buffering the whole stream.
        let data = vec![b'a'; 1024 * 1024];
        let mut reader = BufReader::new(&data[..]);
        let mut buf = Vec::new();
        assert_eq!(
            read_one_line(&mut reader, &mut buf, 4096),
            LineRead::TooLong
        );
        assert!(buf.len() <= 4096 + 1, "buffered {} bytes", buf.len());
    }

    #[test]
    fn blocking_reader_caps_terminated_line_that_is_too_long() {
        let mut data = vec![b'a'; 8192];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut reader = BufReader::new(&data[..]);
        let mut buf = Vec::new();
        assert_eq!(
            read_one_line(&mut reader, &mut buf, 4096),
            LineRead::TooLong
        );
    }

    #[test]
    fn blocking_reader_accepts_line_exactly_at_cap() {
        let mut data = vec![b'a'; 64];
        data.push(b'\n');
        let mut reader = BufReader::new(&data[..]);
        let mut buf = Vec::new();
        assert_eq!(read_one_line(&mut reader, &mut buf, 64), LineRead::Line);
        assert_eq!(buf.len(), 64);
    }

    #[test]
    fn frame_reader_extracts_pipelined_lines() {
        let mut fr = FrameReader::new(1024);
        let mut src: &[u8] = b"one\ntwo\r\nthree\n";
        assert_eq!(fr.fill(&mut src), FillStatus::Eof);
        assert_eq!(fr.next_line().unwrap().unwrap(), b"one");
        assert_eq!(fr.next_line().unwrap().unwrap(), b"two");
        assert_eq!(fr.next_line().unwrap().unwrap(), b"three");
        assert_eq!(fr.next_line().unwrap(), None);
        assert!(fr.at_eof());
    }

    #[test]
    fn frame_reader_handles_split_arrivals() {
        let mut fr = FrameReader::new(1024);
        let mut part: &[u8] = b"hel";
        fr.fill(&mut part);
        assert_eq!(fr.next_line().unwrap(), None);
        let mut rest: &[u8] = b"lo\nworld\n";
        fr.fill(&mut rest);
        assert_eq!(fr.next_line().unwrap().unwrap(), b"hello");
        assert_eq!(fr.next_line().unwrap().unwrap(), b"world");
    }

    #[test]
    fn frame_reader_flags_oversized_frames() {
        let mut fr = FrameReader::new(16);
        let data = [b'x'; 64];
        let mut src = &data[..];
        fr.fill(&mut src);
        assert_eq!(fr.next_line(), Err(FrameTooLong { limit: 16 }));
        // The buffer must stay near the cap even if more data arrives.
        let more = vec![b'x'; 1024 * 1024];
        let mut src = &more[..];
        fr.fill(&mut src);
        assert!(
            fr.buffered() <= 16 + 2 * 16 * 1024,
            "buffered {} bytes past the cap",
            fr.buffered()
        );
    }

    #[test]
    fn frame_reader_oversized_check_applies_to_complete_lines_too() {
        let mut fr = FrameReader::new(4);
        let mut src: &[u8] = b"toolong\n";
        fr.fill(&mut src);
        assert_eq!(fr.next_line(), Err(FrameTooLong { limit: 4 }));
    }
}
