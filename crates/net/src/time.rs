//! Integer time representation shared across the workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in time or a duration, measured in integer nanoseconds.
///
/// All scheduling quantities of the synthesis problem (link transmission
/// delays, switch forwarding delays, release times, periods, end-to-end
/// delays, latencies and jitters) are exactly representable as integer
/// nanoseconds, which keeps the SMT encoding in pure integer difference
/// logic and avoids floating-point rounding in the schedule itself.
///
/// # Example
///
/// ```
/// use tsn_net::Time;
///
/// let ld = Time::from_micros(1200); // 1.2 ms transmission delay
/// let sd = Time::from_micros(5);
/// assert_eq!((ld + sd).as_nanos(), 1_205_000);
/// assert_eq!(Time::from_millis(20).as_micros(), 20_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(i64);

impl Time {
    /// The zero duration / time origin.
    pub const ZERO: Time = Time(0);
    /// The largest representable time.
    pub const MAX: Time = Time(i64::MAX);

    /// Creates a time from integer nanoseconds.
    pub const fn from_nanos(ns: i64) -> Self {
        Time(ns)
    }

    /// Creates a time from integer microseconds.
    pub const fn from_micros(us: i64) -> Self {
        Time(us * 1_000)
    }

    /// Creates a time from integer milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Creates a time from integer seconds.
    pub const fn from_secs(s: i64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Creates a time from a floating-point number of seconds, rounding to
    /// the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        Time((s * 1e9).round() as i64)
    }

    /// The value in nanoseconds.
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// The value in whole microseconds (truncating).
    pub const fn as_micros(self) -> i64 {
        self.0 / 1_000
    }

    /// The value in whole milliseconds (truncating).
    pub const fn as_millis(self) -> i64 {
        self.0 / 1_000_000
    }

    /// The value as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The value as floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` for strictly negative values.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Checked multiplication by an integer factor.
    pub const fn checked_mul(self, factor: i64) -> Option<Time> {
        match self.0.checked_mul(factor) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// The least common multiple of two positive durations.
    ///
    /// Used to compute the hyper-period of a set of periodic applications.
    ///
    /// # Panics
    ///
    /// Panics if either duration is not strictly positive.
    pub fn lcm(self, other: Time) -> Time {
        assert!(self.0 > 0 && other.0 > 0, "lcm requires positive durations");
        let g = gcd(self.0, other.0);
        Time(self.0 / g * other.0)
    }

    /// The maximum of two times.
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The minimum of two times.
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns % 1_000_000 == 0 {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns % 1_000 == 0 {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<i64> for Time {
    type Output = Time;
    fn div(self, rhs: i64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div<Time> for Time {
    type Output = i64;
    fn div(self, rhs: Time) -> i64 {
        self.0 / rhs.0
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrips() {
        assert_eq!(Time::from_micros(1200).as_nanos(), 1_200_000);
        assert_eq!(Time::from_millis(20).as_micros(), 20_000);
        assert_eq!(Time::from_secs(2).as_millis(), 2_000);
        assert_eq!(Time::from_secs_f64(0.0062).as_micros(), 6_200);
        assert!((Time::from_millis(50).as_secs_f64() - 0.050).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_micros(10);
        let b = Time::from_micros(4);
        assert_eq!(a + b, Time::from_micros(14));
        assert_eq!(a - b, Time::from_micros(6));
        assert_eq!(a * 3, Time::from_micros(30));
        assert_eq!(a / 2, Time::from_micros(5));
        assert_eq!(a / b, 2);
        assert_eq!(a % b, Time::from_micros(2));
        assert_eq!(-b, Time::from_micros(-4));
        assert!(Time::from_micros(-1).is_negative());
    }

    #[test]
    fn lcm_of_periods() {
        let h1 = Time::from_millis(20);
        let h2 = Time::from_millis(50);
        assert_eq!(h1.lcm(h2), Time::from_millis(100));
        let h3 = Time::from_millis(40);
        assert_eq!(h1.lcm(h2).lcm(h3), Time::from_millis(200));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn lcm_rejects_zero() {
        let _ = Time::ZERO.lcm(Time::from_millis(1));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_micros(3);
        let b = Time::from_micros(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_picks_reasonable_unit() {
        assert_eq!(Time::from_millis(3).to_string(), "3ms");
        assert_eq!(Time::from_micros(1205).to_string(), "1205us");
        assert_eq!(Time::from_nanos(17).to_string(), "17ns");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [1, 2, 3].iter().map(|&m| Time::from_millis(m)).sum();
        assert_eq!(total, Time::from_millis(6));
    }
}
