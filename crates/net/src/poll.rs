//! A hand-rolled `poll(2)` event loop and the line-protocol connection
//! plane built on it.
//!
//! The serving layer in front of the synthesis engine must hold tens of
//! thousands of mostly-idle client connections without spending one OS
//! thread on each. This module provides the two layers that make that
//! possible with zero external dependencies:
//!
//! * [`Poller`] — a thin, rebuild-per-tick wrapper over the `poll(2)`
//!   system call (no tokio/mio; the wrapper is ~100 lines of FFI against
//!   the libc that `std` already links).
//! * [`serve_lines`] — a single-threaded connection plane for
//!   newline-delimited protocols: nonblocking framed reads with a hard
//!   frame cap, request pipelining on one connection (responses are
//!   written in request order even when they complete out of order), and
//!   write backpressure (a per-connection bounded outbound queue; reads
//!   are suspended while a slow client lets its responses pile up).
//!
//! The plane owns *only* framing and socket readiness. Application work is
//! dispatched by the [`LineHandler`] to whatever worker pool the
//! application already has; finished responses come back through a
//! [`Completions`] queue whose built-in waker nudges the event loop.
//!
//! # Load shedding
//!
//! The plane never sheds by itself — the handler decides, synchronously in
//! [`LineHandler::on_line`], because only the application knows its queue
//! depth and which request classes are droppable. A shed is an ordinary
//! [`LineOutcome::Respond`] carrying a typed `retry_after` rejection, so
//! overload turns into explicit client-visible backoff instead of silent
//! queue collapse. On the daemon's wire protocol the exchange looks like:
//!
//! ```text
//! → {"id":7,"request":{"type":"synthesize","problem":{...}}}
//! ← {"id":7,"cached":false,"elapsed_us":0,"retry_after_ms":100,"error":"overloaded: queue depth 9 at watermark 8"}
//! ```
//!
//! The client backs off for `retry_after_ms` and retries; interactive
//! request classes (health, metrics, session events) are never shed.
//!
//! # Example
//!
//! A complete echo-style server on the plane — the handler answers
//! synchronously, and the listener, one client, and shutdown all run
//! through the event loop:
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::{TcpListener, TcpStream};
//! use std::sync::atomic::{AtomicBool, Ordering};
//! use tsn_net::poll::{serve_lines, Completions, ConnId, LineHandler, LineOutcome, PlaneConfig};
//!
//! struct Upper(AtomicBool);
//! impl LineHandler for Upper {
//!     fn on_line(&self, _conn: ConnId, _seq: u64, line: &str) -> LineOutcome {
//!         if line == "quit" {
//!             self.0.store(true, Ordering::SeqCst);
//!         }
//!         LineOutcome::Respond(line.to_uppercase())
//!     }
//!     fn shutting_down(&self) -> bool {
//!         self.0.load(Ordering::SeqCst)
//!     }
//! }
//!
//! # fn main() -> std::io::Result<()> {
//! let listener = TcpListener::bind("127.0.0.1:0")?;
//! let addr = listener.local_addr()?;
//! let handler = Upper(AtomicBool::new(false));
//! let completions = Completions::new()?;
//! std::thread::scope(|scope| -> std::io::Result<()> {
//!     let plane = scope.spawn(|| serve_lines(listener, &handler, &completions, &PlaneConfig::default()));
//!     let mut client = TcpStream::connect(addr)?;
//!     client.write_all(b"hello\nquit\n")?;
//!     let mut reader = BufReader::new(client);
//!     let mut line = String::new();
//!     reader.read_line(&mut line)?;
//!     assert_eq!(line, "HELLO\n");
//!     line.clear();
//!     reader.read_line(&mut line)?;
//!     assert_eq!(line, "QUIT\n");
//!     plane.join().unwrap()
//! })
//! # }
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::framing::FrameReader;

// ---------------------------------------------------------------------------
// poll(2) FFI
// ---------------------------------------------------------------------------

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

#[cfg(unix)]
fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // `nfds_t` is `unsigned long` on Linux and `unsigned int` on the BSDs;
    // both are register-passed, so an `unsigned long` count with the value
    // in the low bits is ABI-compatible for the fd counts we use.
    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::os::raw::c_ulong,
            timeout: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }
    loop {
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(not(unix))]
fn sys_poll(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
    Err(io::Error::new(
        ErrorKind::Unsupported,
        "poll(2) event loop is only available on unix targets",
    ))
}

#[cfg(unix)]
fn fd_of<T: std::os::fd::AsRawFd>(io: &T) -> i32 {
    io.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of<T>(_io: &T) -> i32 {
    -1
}

// ---------------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------------

/// Readiness interest for one registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor accepts more outbound bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// No readiness interest — errors and hangups are still reported.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn events(self) -> i16 {
        let mut ev = 0;
        if self.readable {
            ev |= POLLIN;
        }
        if self.writable {
            ev |= POLLOUT;
        }
        ev
    }
}

/// One readiness event reported by [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The caller-chosen token the descriptor was registered under.
    pub token: usize,
    /// Data (or a pending accept) can be read without blocking.
    pub readable: bool,
    /// The descriptor can take more outbound bytes.
    pub writable: bool,
    /// The peer hung up; reads will drain buffered data then return 0.
    pub hangup: bool,
    /// The descriptor is in an error state (or was registered with a
    /// closed fd — `POLLNVAL`).
    pub error: bool,
}

/// A rebuild-per-tick wrapper over `poll(2)`.
///
/// `poll(2)` is O(n) in the interest set on every call, so there is
/// nothing to gain from a persistent registration table: callers
/// [`clear`](Self::clear) and re-[`add`](Self::add) the set each tick
/// (which also makes interest changes — read suspension, write
/// completion — trivial), then [`poll`](Self::poll).
///
/// On non-unix targets every `poll` call fails with
/// [`ErrorKind::Unsupported`].
#[derive(Debug, Default)]
pub struct Poller {
    fds: Vec<PollFd>,
    tokens: Vec<usize>,
}

impl Poller {
    /// An empty interest set.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Drops all registered descriptors.
    pub fn clear(&mut self) {
        self.fds.clear();
        self.tokens.clear();
    }

    /// Registers `fd` under `token` for this tick.
    ///
    /// On unix, obtain the fd with `std::os::fd::AsRawFd`. Errors and
    /// hangups are always reported, even with [`Interest::NONE`].
    pub fn add(&mut self, token: usize, fd: i32, interest: Interest) {
        self.fds.push(PollFd {
            fd,
            events: interest.events(),
            revents: 0,
        });
        self.tokens.push(token);
    }

    /// Number of descriptors currently registered.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the interest set is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Blocks until at least one descriptor is ready or `timeout` elapses
    /// (`None` blocks indefinitely), appending one [`Event`] per ready
    /// descriptor to `events` (cleared first). `EINTR` is retried
    /// internally.
    pub fn poll(
        &mut self,
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let ready = sys_poll(&mut self.fds, timeout_ms)?;
        if ready > 0 {
            for (fd, token) in self.fds.iter().zip(&self.tokens) {
                if fd.revents != 0 {
                    events.push(Event {
                        token: *token,
                        readable: fd.revents & POLLIN != 0,
                        writable: fd.revents & POLLOUT != 0,
                        hangup: fd.revents & POLLHUP != 0,
                        error: fd.revents & (POLLERR | POLLNVAL) != 0,
                    });
                }
            }
        }
        Ok(events.len())
    }
}

// ---------------------------------------------------------------------------
// Waker + Completions
// ---------------------------------------------------------------------------

/// A loopback socket pair: `(write half, read half)`. Works on every
/// platform with TCP — no `pipe(2)` FFI needed.
fn socket_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// Wakes a [`Poller`] blocked in `poll` from another thread.
///
/// Implemented as the write half of a loopback socket pair whose read half
/// the event loop registers for readability. Writing is best-effort: if
/// the pair's buffer is full, a wake is already pending and the signal
/// coalesces.
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
}

impl Waker {
    /// Nudges the event loop. Cheap, thread-safe, coalescing.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The queue through which worker threads hand finished response lines
/// back to the event loop.
///
/// Created *before* the plane starts (worker closures need it at
/// construction time) and passed into [`serve_lines`]. Each entry is
/// addressed by the `(conn, seq)` pair the [`LineHandler`] received, so
/// the plane can slot it into that connection's in-order response stream.
/// Completions for connections that have since disconnected are silently
/// dropped.
#[derive(Debug)]
pub struct Completions {
    queue: Mutex<Vec<(ConnId, u64, String)>>,
    waker: Waker,
    rx: TcpStream,
}

impl Completions {
    /// A fresh queue with its own waker pair.
    pub fn new() -> io::Result<Completions> {
        let (tx, rx) = socket_pair()?;
        Ok(Completions {
            queue: Mutex::new(Vec::new()),
            waker: Waker { tx },
            rx,
        })
    }

    /// Hands the response line for `(conn, seq)` back to the plane and
    /// wakes it. Call from any thread.
    pub fn complete(&self, conn: ConnId, seq: u64, line: String) {
        self.queue
            .lock()
            .expect("completions queue poisoned")
            .push((conn, seq, line));
        self.waker.wake();
    }

    /// The waker, for nudging the loop without completing anything (e.g.
    /// to make it re-check [`LineHandler::shutting_down`]).
    pub fn waker(&self) -> &Waker {
        &self.waker
    }

    fn take(&self, into: &mut Vec<(ConnId, u64, String)>) {
        let mut queue = self.queue.lock().expect("completions queue poisoned");
        into.append(&mut queue);
    }

    fn drain_wake(&self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Line handler
// ---------------------------------------------------------------------------

/// Identifies one accepted connection for the lifetime of the plane.
pub type ConnId = u64;

/// What the handler decided to do with one complete request line.
#[derive(Debug)]
pub enum LineOutcome {
    /// No response will ever be produced for this line (e.g. blank lines).
    /// The line's slot in the response order is released.
    Ignore,
    /// The response was produced synchronously; the plane queues it in
    /// order.
    Respond(String),
    /// The response will arrive later through [`Completions::complete`]
    /// with this line's `(conn, seq)`.
    Pending,
}

/// The application half of the connection plane.
///
/// `on_line` runs on the event-loop thread and must never block: anything
/// expensive is dispatched to a worker pool, returning
/// [`LineOutcome::Pending`].
pub trait LineHandler {
    /// One complete request line (newline stripped, lossily UTF-8
    /// decoded) arrived on `conn`. `seq` is the line's position in the
    /// connection's response order; pass it along with any deferred work.
    fn on_line(&self, conn: ConnId, seq: u64, line: &str) -> LineOutcome;

    /// A frame on `conn` exceeded the byte cap. The returned line (if
    /// any) is written, then the connection is drained and closed. The
    /// default closes silently.
    fn on_oversized(&self, conn: ConnId, limit: usize) -> Option<String> {
        let _ = (conn, limit);
        None
    }

    /// A connection was accepted.
    fn on_connect(&self, conn: ConnId) {
        let _ = conn;
    }

    /// A connection was closed (any reason, including shutdown drain).
    fn on_disconnect(&self, conn: ConnId) {
        let _ = conn;
    }

    /// Checked once per tick: when this turns true the plane stops
    /// accepting, stops reading, flushes every in-flight response, closes
    /// all connections, and returns from [`serve_lines`].
    fn shutting_down(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// The connection plane
// ---------------------------------------------------------------------------

/// Tuning knobs for [`serve_lines`].
#[derive(Debug, Clone)]
pub struct PlaneConfig {
    /// Hard cap on one request line, in bytes
    /// ([`crate::framing::MAX_LINE_BYTES`] by default).
    pub max_line_bytes: usize,
    /// Once a connection's unflushed outbound bytes reach this watermark,
    /// its reads are suspended until the client drains below it
    /// (backpressure instead of unbounded buffering).
    pub write_highwater: usize,
    /// Upper bound on one event-loop tick; the built-in waker makes
    /// wakeups prompt, this only bounds shutdown-flag latency.
    pub poll_timeout: Duration,
    /// Accepted connections beyond this are closed immediately.
    pub max_connections: usize,
    /// Set `TCP_NODELAY` on accepted connections (on by default — the
    /// request/response pattern suffers badly from Nagle + delayed ACK).
    pub nodelay: bool,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            max_line_bytes: crate::framing::MAX_LINE_BYTES,
            write_highwater: 1024 * 1024,
            poll_timeout: Duration::from_millis(50),
            max_connections: 16 * 1024,
            nodelay: true,
        }
    }
}

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;
const TOKEN_CONN_BASE: usize = 2;

/// How long a connection being closed for cause (oversized frame) is
/// given to read its error response before the socket is dropped.
const CLOSE_DRAIN_GRACE: Duration = Duration::from_secs(2);

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// Sequence number the next parsed line will get.
    next_seq: u64,
    /// Sequence number whose response is next in the outbound order.
    next_write: u64,
    /// Completed responses waiting for their turn (`None` = ignored line).
    pending: BTreeMap<u64, Option<String>>,
    /// Lines handed to workers whose completions have not yet arrived.
    outstanding: usize,
    /// Bytes queued for the socket.
    outbound: VecDeque<u8>,
    /// No more lines will be read (client EOF, oversized frame, or
    /// shutdown drain).
    read_closed: bool,
    /// Closing for cause: flush, half-close, discard inbound, then drop.
    closing: bool,
    /// Write side already shut down (closing path).
    write_done: bool,
    /// Drop deadline for the closing path.
    close_deadline: Option<Instant>,
    /// Connection is dead; reap it.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, config: &PlaneConfig) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(config.max_line_bytes),
            next_seq: 0,
            next_write: 0,
            pending: BTreeMap::new(),
            outstanding: 0,
            outbound: VecDeque::new(),
            read_closed: false,
            closing: false,
            write_done: false,
            close_deadline: None,
            dead: false,
        }
    }

    fn interest(&self, config: &PlaneConfig) -> Interest {
        Interest {
            // A closing connection keeps reading only to discard inbound
            // bytes (so the kernel never RSTs away the queued error
            // response); a healthy one reads unless backpressured.
            readable: if self.closing {
                !self.write_done || self.close_deadline.is_some()
            } else {
                !self.read_closed && self.outbound.len() < config.write_highwater
            },
            writable: !self.outbound.is_empty(),
        }
    }

    /// Moves completed in-order responses from `pending` into `outbound`.
    fn promote(&mut self) {
        while let Some(slot) = self.pending.remove(&self.next_write) {
            if let Some(line) = slot {
                self.outbound.extend(line.as_bytes());
                self.outbound.push_back(b'\n');
            }
            self.next_write += 1;
        }
    }

    /// Writes as much of `outbound` as the socket takes right now.
    fn try_write(&mut self) {
        while !self.outbound.is_empty() {
            let (head, _) = self.outbound.as_slices();
            match (&self.stream).write(head) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.outbound.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Reads and throws away inbound bytes on the closing path.
    fn discard_inbound(&mut self) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match (&self.stream).read(&mut buf) {
                Ok(0) => {
                    // Peer finished sending; nothing left to drain.
                    if self.write_done {
                        self.dead = true;
                    }
                    self.read_closed = true;
                    return;
                }
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Post-I/O bookkeeping: promote, flush, advance the closing state
    /// machine, and decide whether the connection can be reaped.
    fn settle(&mut self, now: Instant) {
        if self.dead {
            return;
        }
        self.promote();
        self.try_write();
        if self.dead {
            return;
        }
        if self.closing {
            if self.outbound.is_empty() && self.outstanding == 0 && !self.write_done {
                let _ = self.stream.shutdown(Shutdown::Write);
                self.write_done = true;
                self.close_deadline = Some(now + CLOSE_DRAIN_GRACE);
            }
            if self.write_done {
                if self.read_closed {
                    self.dead = true;
                } else if let Some(deadline) = self.close_deadline {
                    if now >= deadline {
                        self.dead = true;
                    }
                }
            }
        } else if self.read_closed
            && self.outstanding == 0
            && self.pending.is_empty()
            && self.outbound.is_empty()
        {
            // Client closed its write side and everything owed has been
            // flushed.
            self.dead = true;
        }
    }
}

/// Runs the event loop: accepts on `listener`, frames request lines,
/// hands them to `handler`, and writes responses back in per-connection
/// request order. Returns once [`LineHandler::shutting_down`] turns true
/// and every in-flight response has been flushed.
///
/// Single-threaded by design — spawn it on one thread and keep all
/// application work in worker pools (see the module docs for the full
/// architecture).
pub fn serve_lines<H: LineHandler>(
    listener: TcpListener,
    handler: &H,
    completions: &Completions,
    config: &PlaneConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let listener_fd = fd_of(&listener);
    let waker_fd = fd_of(&completions.rx);
    let mut conns: BTreeMap<ConnId, Conn> = BTreeMap::new();
    let mut next_conn_id: ConnId = 0;
    let mut poller = Poller::new();
    let mut events: Vec<Event> = Vec::new();
    let mut completed: Vec<(ConnId, u64, String)> = Vec::new();
    let mut draining = false;

    loop {
        if !draining && handler.shutting_down() {
            draining = true;
            for conn in conns.values_mut() {
                conn.read_closed = true;
            }
        }
        if draining && conns.is_empty() {
            return Ok(());
        }

        poller.clear();
        if !draining && conns.len() < config.max_connections {
            poller.add(TOKEN_LISTENER, listener_fd, Interest::READABLE);
        }
        poller.add(TOKEN_WAKER, waker_fd, Interest::READABLE);
        for (&id, conn) in &conns {
            poller.add(
                TOKEN_CONN_BASE + id as usize,
                fd_of(&conn.stream),
                conn.interest(config),
            );
        }

        poller.poll(Some(config.poll_timeout), &mut events)?;

        // Completions are drained every tick regardless of the waker state
        // — a wake racing the poll call is then harmless.
        completions.drain_wake();
        completions.take(&mut completed);
        for (conn_id, seq, line) in completed.drain(..) {
            if let Some(conn) = conns.get_mut(&conn_id) {
                conn.outstanding = conn.outstanding.saturating_sub(1);
                conn.pending.insert(seq, Some(line));
            }
        }

        for event in &events {
            match event.token {
                TOKEN_LISTENER => {
                    accept_ready(&listener, &mut conns, &mut next_conn_id, handler, config);
                }
                TOKEN_WAKER => {}
                token => {
                    let conn_id = (token - TOKEN_CONN_BASE) as ConnId;
                    let Some(conn) = conns.get_mut(&conn_id) else {
                        continue;
                    };
                    if event.error {
                        conn.dead = true;
                        continue;
                    }
                    if event.readable || event.hangup {
                        handle_readable(conn_id, conn, handler, draining);
                    }
                    // Writes are retried in settle() below for every
                    // connection with queued output.
                }
            }
        }

        let now = Instant::now();
        let mut reaped: Vec<ConnId> = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            conn.settle(now);
            if conn.dead {
                reaped.push(id);
            }
        }
        for id in reaped {
            conns.remove(&id);
            handler.on_disconnect(id);
        }
    }
}

fn accept_ready<H: LineHandler>(
    listener: &TcpListener,
    conns: &mut BTreeMap<ConnId, Conn>,
    next_conn_id: &mut ConnId,
    handler: &H,
    config: &PlaneConfig,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if conns.len() >= config.max_connections {
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                if config.nodelay {
                    let _ = stream.set_nodelay(true);
                }
                let id = *next_conn_id;
                *next_conn_id += 1;
                conns.insert(id, Conn::new(stream, config));
                handler.on_connect(id);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Transient accept failures (EMFILE, aborted handshakes):
            // give up for this tick and retry on the next readiness event.
            Err(_) => return,
        }
    }
}

fn handle_readable<H: LineHandler>(conn_id: ConnId, conn: &mut Conn, handler: &H, draining: bool) {
    if conn.closing {
        conn.discard_inbound();
        return;
    }
    if conn.read_closed {
        // Shutdown drain (or post-EOF): consume and ignore.
        if draining {
            conn.discard_inbound();
        }
        return;
    }
    match conn.reader.fill(&mut (&conn.stream)) {
        crate::framing::FillStatus::Failed => {
            conn.dead = true;
            return;
        }
        crate::framing::FillStatus::Eof => {
            conn.read_closed = true;
        }
        crate::framing::FillStatus::ReadSome | crate::framing::FillStatus::WouldBlock => {}
    }
    loop {
        match conn.reader.next_line() {
            Ok(Some(bytes)) => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let line = String::from_utf8_lossy(&bytes);
                match handler.on_line(conn_id, seq, &line) {
                    LineOutcome::Ignore => {
                        conn.pending.insert(seq, None);
                    }
                    LineOutcome::Respond(response) => {
                        conn.pending.insert(seq, Some(response));
                    }
                    LineOutcome::Pending => {
                        conn.outstanding += 1;
                    }
                }
            }
            Ok(None) => break,
            Err(err) => {
                if let Some(response) = handler.on_oversized(conn_id, err.limit) {
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending.insert(seq, Some(response));
                }
                conn.closing = true;
                conn.read_closed = true;
                break;
            }
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::mpsc;

    fn pair() -> (TcpStream, TcpStream) {
        socket_pair().unwrap()
    }

    #[test]
    fn poller_reports_readability_and_timeout() {
        let (tx, rx) = pair();
        let mut poller = Poller::new();
        let mut events = Vec::new();
        poller.add(7, fd_of(&rx), Interest::READABLE);
        // Nothing to read yet: times out with no events.
        let n = poller
            .poll(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert_eq!(n, 0);
        (&tx).write_all(b"x").unwrap();
        poller.clear();
        poller.add(7, fd_of(&rx), Interest::READABLE);
        let n = poller
            .poll(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let completions = Completions::new().unwrap();
        let mut poller = Poller::new();
        let mut events = Vec::new();
        poller.add(TOKEN_WAKER, fd_of(&completions.rx), Interest::READABLE);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(30));
                completions.waker().wake();
            });
            let n = poller
                .poll(Some(Duration::from_secs(10)), &mut events)
                .unwrap();
            assert_eq!(n, 1, "waker must interrupt the poll");
        });
        completions.drain_wake();
    }

    /// Echoes lines, shutting down on "quit". Lines prefixed "async:" are
    /// shipped to a worker channel and completed out of band.
    struct EchoHandler {
        done: AtomicBool,
        async_tx: Mutex<Option<mpsc::Sender<(ConnId, u64, String)>>>,
        connects: AtomicU64,
        disconnects: AtomicU64,
        handled: AtomicU64,
    }

    impl EchoHandler {
        fn new() -> EchoHandler {
            EchoHandler {
                done: AtomicBool::new(false),
                async_tx: Mutex::new(None),
                connects: AtomicU64::new(0),
                disconnects: AtomicU64::new(0),
                handled: AtomicU64::new(0),
            }
        }
    }

    impl LineHandler for EchoHandler {
        fn on_line(&self, conn: ConnId, seq: u64, line: &str) -> LineOutcome {
            self.handled.fetch_add(1, Ordering::SeqCst);
            if line.is_empty() {
                return LineOutcome::Ignore;
            }
            if line == "quit" {
                self.done.store(true, Ordering::SeqCst);
                return LineOutcome::Respond("bye".to_string());
            }
            if let Some(rest) = line.strip_prefix("async:") {
                let guard = self.async_tx.lock().unwrap();
                if let Some(tx) = guard.as_ref() {
                    tx.send((conn, seq, rest.to_string())).unwrap();
                    return LineOutcome::Pending;
                }
            }
            if let Some(rest) = line.strip_prefix("big:") {
                // A response far larger than the request, to build real
                // write pressure: kernel socket buffers absorb hundreds of
                // kilobytes before WouldBlock ever surfaces.
                return LineOutcome::Respond(format!("{rest}:{}", "x".repeat(256 * 1024)));
            }
            LineOutcome::Respond(format!("echo:{line}"))
        }

        fn on_oversized(&self, _conn: ConnId, limit: usize) -> Option<String> {
            Some(format!("error:line_too_long:{limit}"))
        }

        fn on_connect(&self, _conn: ConnId) {
            self.connects.fetch_add(1, Ordering::SeqCst);
        }

        fn on_disconnect(&self, _conn: ConnId) {
            self.disconnects.fetch_add(1, Ordering::SeqCst);
        }

        fn shutting_down(&self) -> bool {
            self.done.load(Ordering::SeqCst)
        }
    }

    fn read_line(reader: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn plane_pipelines_and_reorders_async_completions() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handler = EchoHandler::new();
        let completions = Completions::new().unwrap();
        let (tx, rx) = mpsc::channel::<(ConnId, u64, String)>();
        *handler.async_tx.lock().unwrap() = Some(tx);

        std::thread::scope(|scope| {
            scope.spawn(|| {
                serve_lines(listener, &handler, &completions, &PlaneConfig::default()).unwrap()
            });
            // Worker: collect two async jobs, complete them in REVERSE
            // order — the plane must still answer in request order.
            let completions = &completions;
            scope.spawn(move || {
                let first = rx.recv().unwrap();
                let second = rx.recv().unwrap();
                completions.complete(second.0, second.1, format!("done:{}", second.2));
                completions.complete(first.0, first.1, format!("done:{}", first.2));
            });

            let mut client = TcpStream::connect(addr).unwrap();
            // One write: sync, async, async, sync, blank (ignored), quit.
            client
                .write_all(b"a\nasync:one\nasync:two\nb\n\nquit\n")
                .unwrap();
            let mut reader = BufReader::new(client);
            assert_eq!(read_line(&mut reader), "echo:a");
            assert_eq!(read_line(&mut reader), "done:one");
            assert_eq!(read_line(&mut reader), "done:two");
            assert_eq!(read_line(&mut reader), "echo:b");
            assert_eq!(read_line(&mut reader), "bye");
            // Plane drains and closes: EOF.
            let mut last = String::new();
            assert_eq!(reader.read_line(&mut last).unwrap(), 0);
        });
        assert_eq!(handler.connects.load(Ordering::SeqCst), 1);
        assert_eq!(handler.disconnects.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn plane_answers_oversized_line_with_typed_error_then_closes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handler = EchoHandler::new();
        let completions = Completions::new().unwrap();
        let config = PlaneConfig {
            max_line_bytes: 64,
            ..PlaneConfig::default()
        };

        std::thread::scope(|scope| {
            let plane = scope.spawn(|| serve_lines(listener, &handler, &completions, &config));
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(&[b'x'; 4096]).unwrap();
            let mut reader = BufReader::new(client);
            assert_eq!(read_line(&mut reader), "error:line_too_long:64");
            let mut last = String::new();
            assert_eq!(
                reader.read_line(&mut last).unwrap(),
                0,
                "connection must close after the oversized rejection"
            );
            // A healthy connection still works afterwards.
            let mut client2 = TcpStream::connect(addr).unwrap();
            client2.write_all(b"ok\nquit\n").unwrap();
            let mut reader2 = BufReader::new(client2);
            assert_eq!(read_line(&mut reader2), "echo:ok");
            assert_eq!(read_line(&mut reader2), "bye");
            plane.join().unwrap().unwrap();
        });
    }

    #[test]
    fn plane_suspends_reads_when_client_stops_reading() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handler = EchoHandler::new();
        let completions = Completions::new().unwrap();
        let config = PlaneConfig {
            write_highwater: 1024 * 1024,
            poll_timeout: Duration::from_millis(5),
            ..PlaneConfig::default()
        };

        // Each "big:" request draws a 256 KiB response; 40 of them is
        // ~10 MiB — far past the kernel's socket buffering AND the 1 MiB
        // watermark, so the plane must stop reading this connection.
        std::thread::scope(|scope| {
            scope.spawn(|| serve_lines(listener, &handler, &completions, &config).unwrap());
            let mut client = TcpStream::connect(addr).unwrap();
            let first: String = (0..40).map(|i| format!("big:{i}\n")).collect();
            client.write_all(first.as_bytes()).unwrap();
            // Give the plane time to handle the burst and hit the
            // watermark.
            std::thread::sleep(Duration::from_millis(300));
            // Second burst while every response sits unread.
            let second: String = (40..80).map(|i| format!("big:{i}\n")).collect();
            client.write_all(second.as_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(300));
            let handled_stalled = handler.handled.load(Ordering::SeqCst);
            // Resume reading: every response arrives, in order. Asserts
            // are deferred until after shutdown so a failure can't strand
            // the plane thread.
            let mut reader = BufReader::new(client);
            let mut order_ok = true;
            for i in 0..80 {
                let line = read_line(&mut reader);
                order_ok &= line.starts_with(&format!("{i}:"));
            }
            let handled_resumed = handler.handled.load(Ordering::SeqCst);
            reader.get_ref().write_all(b"quit\n").unwrap();
            let bye = read_line(&mut reader);
            assert!(
                handled_stalled < 80,
                "reads must suspend under write backpressure (handled {handled_stalled})"
            );
            assert!(order_ok, "responses must stay in request order");
            assert_eq!(handled_resumed, 80, "reads must resume once drained");
            assert_eq!(bye, "bye");
        });
    }

    #[test]
    fn plane_survives_slow_loris_clients() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handler = EchoHandler::new();
        let completions = Completions::new().unwrap();
        let config = PlaneConfig {
            poll_timeout: Duration::from_millis(5),
            ..PlaneConfig::default()
        };

        std::thread::scope(|scope| {
            scope.spawn(|| serve_lines(listener, &handler, &completions, &config).unwrap());
            // The loris trickles a request one byte at a time…
            let mut loris = TcpStream::connect(addr).unwrap();
            for &b in b"slow" {
                loris.write_all(&[b]).unwrap();
                std::thread::sleep(Duration::from_millis(5));
                // …while a well-behaved client gets served promptly.
                let mut fast = TcpStream::connect(addr).unwrap();
                fast.write_all(b"fast\n").unwrap();
                let mut reader = BufReader::new(fast);
                assert_eq!(read_line(&mut reader), "echo:fast");
            }
            loris.write_all(b"\n").unwrap();
            let mut reader = BufReader::new(loris);
            assert_eq!(read_line(&mut reader), "echo:slow");
            reader.get_ref().write_all(b"quit\n").unwrap();
            assert_eq!(read_line(&mut reader), "bye");
        });
    }
}
