//! Directed links (egress ports) of the network topology.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{LinkId, NodeId, Time};

/// Physical properties of a full-duplex link.
///
/// The paper's evaluation uses 10 Mbit/s links with maximum 1500-byte frames,
/// giving a transmission delay `ld = 1.2 ms`, and a constant switch forwarding
/// delay `sd = 5 µs`. [`LinkSpec`] captures data rate and propagation delay so
/// the transmission delay can be derived per frame size.
///
/// # Example
///
/// ```
/// use tsn_net::{LinkSpec, Time};
///
/// // The paper's automotive case study: 10 Mbit/s, 1500-byte frames.
/// let spec = LinkSpec::new(10_000_000, Time::ZERO);
/// assert_eq!(spec.transmission_delay(1500), Time::from_micros(1200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Data rate in bits per second.
    data_rate_bps: u64,
    /// Constant propagation delay of the medium.
    propagation_delay: Time,
}

impl LinkSpec {
    /// Creates a link specification from a data rate (bits per second) and a
    /// propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `data_rate_bps` is zero.
    pub fn new(data_rate_bps: u64, propagation_delay: Time) -> Self {
        assert!(data_rate_bps > 0, "link data rate must be positive");
        LinkSpec {
            data_rate_bps,
            propagation_delay,
        }
    }

    /// A 10 Mbit/s link with no propagation delay, as used in the paper's
    /// automotive case study.
    pub fn automotive_10mbps() -> Self {
        LinkSpec::new(10_000_000, Time::ZERO)
    }

    /// A 100 Mbit/s Fast Ethernet link with no propagation delay.
    pub fn fast_ethernet() -> Self {
        LinkSpec::new(100_000_000, Time::ZERO)
    }

    /// A 1 Gbit/s Ethernet link with no propagation delay.
    pub fn gigabit_ethernet() -> Self {
        LinkSpec::new(1_000_000_000, Time::ZERO)
    }

    /// The data rate in bits per second.
    pub fn data_rate_bps(&self) -> u64 {
        self.data_rate_bps
    }

    /// The propagation delay of the medium.
    pub fn propagation_delay(&self) -> Time {
        self.propagation_delay
    }

    /// The transmission delay (`ld` in the paper) of a frame of
    /// `frame_bytes` bytes on this link, including propagation delay.
    ///
    /// The delay is rounded up to the next nanosecond so that schedules built
    /// from it are always conservative.
    pub fn transmission_delay(&self, frame_bytes: u32) -> Time {
        let bits = frame_bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.data_rate_bps as u128);
        Time::from_nanos(ns as i64) + self.propagation_delay
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::fast_ethernet()
    }
}

/// A directed link of the topology, i.e. one egress port of its source node.
///
/// Two [`Link`]s with swapped endpoints are created for every full-duplex
/// physical connection added through [`Topology::connect`].
///
/// [`Topology::connect`]: crate::Topology::connect
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    id: LinkId,
    source: NodeId,
    target: NodeId,
    spec: LinkSpec,
    /// The link going in the opposite direction over the same physical cable.
    reverse: LinkId,
}

impl Link {
    pub(crate) fn new(
        id: LinkId,
        source: NodeId,
        target: NodeId,
        spec: LinkSpec,
        reverse: LinkId,
    ) -> Self {
        Link {
            id,
            source,
            target,
            spec,
            reverse,
        }
    }

    /// The identifier of this directed link.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The node transmitting on this link.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The node receiving on this link.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The physical properties of the link.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// The directed link of the opposite direction on the same cable.
    pub fn reverse(&self) -> LinkId {
        self.reverse
    }

    /// The transmission delay of a frame of `frame_bytes` bytes on this link.
    pub fn transmission_delay(&self, frame_bytes: u32) -> Time {
        self.spec.transmission_delay(frame_bytes)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.source, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_delay_matches_paper_case_study() {
        // 1500 bytes at 10 Mbit/s = 1.2 ms.
        let spec = LinkSpec::automotive_10mbps();
        assert_eq!(spec.transmission_delay(1500), Time::from_micros(1200));
        // 1500 bytes at 100 Mbit/s = 120 us.
        assert_eq!(
            LinkSpec::fast_ethernet().transmission_delay(1500),
            Time::from_micros(120)
        );
        // 64 bytes at 1 Gbit/s = 512 ns.
        assert_eq!(
            LinkSpec::gigabit_ethernet().transmission_delay(64),
            Time::from_nanos(512)
        );
    }

    #[test]
    fn transmission_delay_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s, must round up to full ns.
        let spec = LinkSpec::new(3, Time::ZERO);
        assert_eq!(spec.transmission_delay(1), Time::from_nanos(2_666_666_667));
    }

    #[test]
    fn propagation_delay_is_added() {
        let spec = LinkSpec::new(10_000_000, Time::from_micros(2));
        assert_eq!(spec.transmission_delay(1500), Time::from_micros(1202));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = LinkSpec::new(0, Time::ZERO);
    }
}
