//! The network topology graph.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Link, LinkId, LinkSpec, NetError, Node, NodeId, NodeKind};

/// The network and its topology: a graph `G = (V, E)` whose nodes are
/// Ethernet switches, sensors or controllers and whose edges are full-duplex
/// physical links (Section II-A of the paper).
///
/// Internally every full-duplex connection is stored as two *directed* links,
/// because scheduling, contention and routing decisions are made per egress
/// port of a switch.
///
/// # Example
///
/// ```
/// use tsn_net::{LinkSpec, NodeKind, Topology};
///
/// # fn main() -> Result<(), tsn_net::NetError> {
/// let mut topo = Topology::new();
/// let s = topo.add_node("S", NodeKind::Sensor);
/// let sw = topo.add_node("SW", NodeKind::Switch);
/// let c = topo.add_node("C", NodeKind::Controller);
/// topo.connect(s, sw, LinkSpec::fast_ethernet())?;
/// topo.connect(sw, c, LinkSpec::fast_ethernet())?;
///
/// assert_eq!(topo.node_count(), 3);
/// assert_eq!(topo.link_count(), 4); // two directed links per connection
/// assert!(topo.is_connected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    out_links: Vec<Vec<LinkId>>,
    #[serde(skip)]
    link_index: HashMap<(NodeId, NodeId), LinkId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node with the given name and kind and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, name, kind));
        self.out_links.push(Vec::new());
        id
    }

    /// Connects two nodes with a full-duplex link, creating the two directed
    /// links `(a -> b)` and `(b -> a)`. Returns their ids in that order.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown, if `a == b`, if the nodes
    /// are already connected, or if an end station (sensor/controller) would
    /// end up with more than one port.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        spec: LinkSpec,
    ) -> Result<(LinkId, LinkId), NetError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(NetError::SelfLoop(a));
        }
        if self.link_index.contains_key(&(a, b)) {
            return Err(NetError::DuplicateLink(a, b));
        }
        for &n in &[a, b] {
            if self.node(n).kind().is_end_station() && !self.out_links[n.index()].is_empty() {
                return Err(NetError::EndStationDegree(n));
            }
        }
        let ab = LinkId::new(self.links.len() as u32);
        let ba = LinkId::new(self.links.len() as u32 + 1);
        self.links.push(Link::new(ab, a, b, spec, ba));
        self.links.push(Link::new(ba, b, a, spec, ab));
        self.out_links[a.index()].push(ab);
        self.out_links[b.index()].push(ba);
        self.link_index.insert((a, b), ab);
        self.link_index.insert((b, a), ba);
        Ok((ab, ba))
    }

    fn check_node(&self, n: NodeId) -> Result<(), NetError> {
        if n.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(NetError::UnknownNode(n))
        }
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The number of *directed* links (twice the number of physical links).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The number of full-duplex physical links.
    pub fn physical_link_count(&self) -> usize {
        self.links.len() / 2
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this topology.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The directed link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this topology.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter()
    }

    /// Iterates over all directed links.
    pub fn links(&self) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter()
    }

    /// All node ids of the given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind() == kind)
            .map(|n| n.id())
            .collect()
    }

    /// All switch node ids.
    pub fn switches(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeKind::Switch)
    }

    /// All sensor node ids.
    pub fn sensors(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeKind::Sensor)
    }

    /// All controller node ids.
    pub fn controllers(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeKind::Controller)
    }

    /// Finds a node by its name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.name() == name).map(|n| n.id())
    }

    /// The directed link from `a` to `b`, if the two nodes are connected.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        if self.link_index.is_empty() && !self.links.is_empty() {
            // Topology was deserialized: fall back to a scan.
            return self
                .links
                .iter()
                .find(|l| l.source() == a && l.target() == b)
                .map(|l| l.id());
        }
        self.link_index.get(&(a, b)).copied()
    }

    /// The outgoing directed links (egress ports) of a node.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_links[node.index()]
    }

    /// The neighbors reachable from `node` over one link.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.out_links[node.index()]
            .iter()
            .map(|&l| self.links[l.index()].target())
            .collect()
    }

    /// The degree (number of attached physical links) of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_links[node.index()].len()
    }

    /// Returns `true` if every node can reach every other node.
    ///
    /// An empty topology is considered connected.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &l in &self.out_links[n.index()] {
                let t = self.links[l.index()].target();
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    count += 1;
                    stack.push(t);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Rebuilds internal lookup tables. Must be called after deserializing a
    /// topology with serde.
    pub fn rebuild_index(&mut self) {
        self.link_index = self
            .links
            .iter()
            .map(|l| ((l.source(), l.target()), l.id()))
            .collect();
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology with {} nodes ({} switches, {} sensors, {} controllers) and {} physical links",
            self.node_count(),
            self.switches().len(),
            self.sensors().len(),
            self.controllers().len(),
            self.physical_link_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Switch);
        let b = t.add_node("b", NodeKind::Switch);
        let c = t.add_node("c", NodeKind::Switch);
        t.connect(a, b, LinkSpec::fast_ethernet()).unwrap();
        t.connect(b, c, LinkSpec::fast_ethernet()).unwrap();
        t.connect(c, a, LinkSpec::fast_ethernet()).unwrap();
        (t, a, b, c)
    }

    #[test]
    fn connect_creates_both_directions() {
        let (t, a, b, _) = triangle();
        let ab = t.link_between(a, b).unwrap();
        let ba = t.link_between(b, a).unwrap();
        assert_ne!(ab, ba);
        assert_eq!(t.link(ab).reverse(), ba);
        assert_eq!(t.link(ba).reverse(), ab);
        assert_eq!(t.link(ab).source(), a);
        assert_eq!(t.link(ab).target(), b);
    }

    #[test]
    fn duplicate_and_self_loops_rejected() {
        let (mut t, a, b, _) = triangle();
        assert_eq!(
            t.connect(a, b, LinkSpec::fast_ethernet()),
            Err(NetError::DuplicateLink(a, b))
        );
        assert_eq!(
            t.connect(b, a, LinkSpec::fast_ethernet()),
            Err(NetError::DuplicateLink(b, a))
        );
        assert_eq!(
            t.connect(a, a, LinkSpec::fast_ethernet()),
            Err(NetError::SelfLoop(a))
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let (mut t, a, _, _) = triangle();
        let ghost = NodeId::new(99);
        assert_eq!(
            t.connect(a, ghost, LinkSpec::fast_ethernet()),
            Err(NetError::UnknownNode(ghost))
        );
    }

    #[test]
    fn end_stations_have_a_single_port() {
        let mut t = Topology::new();
        let s = t.add_node("s", NodeKind::Sensor);
        let sw1 = t.add_node("sw1", NodeKind::Switch);
        let sw2 = t.add_node("sw2", NodeKind::Switch);
        t.connect(s, sw1, LinkSpec::fast_ethernet()).unwrap();
        assert_eq!(
            t.connect(s, sw2, LinkSpec::fast_ethernet()),
            Err(NetError::EndStationDegree(s))
        );
    }

    #[test]
    fn kind_queries() {
        let mut t = Topology::new();
        let s = t.add_node("s", NodeKind::Sensor);
        let sw = t.add_node("sw", NodeKind::Switch);
        let c = t.add_node("c", NodeKind::Controller);
        assert_eq!(t.sensors(), vec![s]);
        assert_eq!(t.switches(), vec![sw]);
        assert_eq!(t.controllers(), vec![c]);
        assert_eq!(t.node_by_name("sw"), Some(sw));
        assert_eq!(t.node_by_name("nope"), None);
    }

    #[test]
    fn connectivity() {
        let (t, ..) = triangle();
        assert!(t.is_connected());
        let mut t2 = Topology::new();
        t2.add_node("x", NodeKind::Switch);
        t2.add_node("y", NodeKind::Switch);
        assert!(!t2.is_connected());
        assert!(Topology::new().is_connected());
    }

    #[test]
    fn neighbors_and_degree() {
        let (t, a, b, c) = triangle();
        let mut n = t.neighbors(a);
        n.sort();
        assert_eq!(n, vec![b, c]);
        assert_eq!(t.degree(a), 2);
        assert_eq!(t.out_links(a).len(), 2);
    }

    #[test]
    fn rebuild_index_restores_lookup_after_deserialization() {
        let (t, a, b, _) = triangle();
        // Emulate the state right after serde deserialization: the link
        // lookup table is skipped and therefore empty.
        let mut t2 = t.clone();
        t2.link_index.clear();
        assert_eq!(t2.link_between(a, b), t.link_between(a, b));
        t2.rebuild_index();
        assert_eq!(t2.link_between(a, b), t.link_between(a, b));
    }

    #[test]
    fn display_summarizes_topology() {
        let (t, ..) = triangle();
        let s = t.to_string();
        assert!(s.contains("3 nodes"));
        assert!(s.contains("3 physical links"));
    }
}
