//! Routes: simple paths from a source end station to a destination.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{LinkId, NetError, NodeId, Time, Topology};

/// A loop-free route through the network: an ordered sequence of nodes from a
/// source (typically a sensor) to a destination (typically a controller),
/// together with the directed links traversed between them.
///
/// Routes satisfy by construction the paper's *topology* (Eq. 4), *no-loop*
/// (Eq. 7) and *route* (Eq. 8) constraints: consecutive nodes are connected,
/// no node repeats, and the path connects the requested endpoints. This is
/// what allows the synthesizer to encode route selection as a choice among
/// candidate [`Route`]s instead of free per-switch port variables.
///
/// # Example
///
/// ```
/// use tsn_net::{LinkSpec, NodeKind, Topology};
///
/// # fn main() -> Result<(), tsn_net::NetError> {
/// let mut topo = Topology::new();
/// let s = topo.add_node("S", NodeKind::Sensor);
/// let sw = topo.add_node("SW", NodeKind::Switch);
/// let c = topo.add_node("C", NodeKind::Controller);
/// topo.connect(s, sw, LinkSpec::fast_ethernet())?;
/// topo.connect(sw, c, LinkSpec::fast_ethernet())?;
///
/// let route = topo.route_from_nodes(&[s, sw, c])?;
/// assert_eq!(route.hop_count(), 2);
/// assert_eq!(route.switch_count(&topo), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    nodes: Vec<NodeId>,
    links: Vec<LinkId>,
}

impl Route {
    pub(crate) fn new(nodes: Vec<NodeId>, links: Vec<LinkId>) -> Self {
        debug_assert_eq!(nodes.len(), links.len() + 1);
        Route { nodes, links }
    }

    /// Reassembles a route from its raw parts, as produced by
    /// [`nodes`](Route::nodes) and [`links`](Route::links). This is the
    /// deserialization hook for wire formats; it checks the shape invariants
    /// (`nodes.len() == links.len() + 1`, at least one link, no repeated
    /// node) but not membership in any particular topology — use
    /// [`Topology::route_from_nodes`] when a topology is at hand.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::RepeatedNode`] for a repeated node and
    /// [`NetError::NoRoute`] for a malformed shape.
    pub fn from_parts(nodes: Vec<NodeId>, links: Vec<LinkId>) -> Result<Route, NetError> {
        if nodes.len() < 2 || nodes.len() != links.len() + 1 {
            return Err(NetError::NoRoute {
                source: nodes.first().copied().unwrap_or_default(),
                destination: nodes.last().copied().unwrap_or_default(),
            });
        }
        for (i, &n) in nodes.iter().enumerate() {
            if nodes[..i].contains(&n) {
                return Err(NetError::RepeatedNode(n));
            }
        }
        Ok(Route { nodes, links })
    }

    /// The source node (first node of the path).
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node (last node of the path).
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("routes are never empty")
    }

    /// The ordered nodes of the route, including source and destination.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The ordered directed links of the route.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// The number of links (hops) of the route.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// The number of intermediate switches traversed.
    pub fn switch_count(&self, topology: &Topology) -> usize {
        self.nodes
            .iter()
            .filter(|&&n| topology.node(n).kind().is_switch())
            .count()
    }

    /// Returns `true` if the route traverses the given directed link.
    pub fn contains_link(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Returns `true` if the route visits the given node.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// The links shared by this route and another (same direction only).
    pub fn shared_links<'a>(&'a self, other: &'a Route) -> impl Iterator<Item = LinkId> + 'a {
        self.links
            .iter()
            .copied()
            .filter(move |l| other.links.contains(l))
    }

    /// The minimum end-to-end delay of a frame of `frame_bytes` bytes sent on
    /// this route, assuming zero queueing: the sum of per-hop transmission
    /// delays plus a forwarding delay for every intermediate switch.
    ///
    /// This is the lower bound used by the synthesizer to prune candidate
    /// routes that can never satisfy a deadline or stability bound.
    pub fn base_delay(
        &self,
        topology: &Topology,
        frame_bytes: u32,
        forwarding_delay: Time,
    ) -> Time {
        let tx: Time = self
            .links
            .iter()
            .map(|&l| topology.link(l).transmission_delay(frame_bytes))
            .sum();
        let switch_hops = self.hop_count().saturating_sub(1) as i64;
        tx + forwarding_delay * switch_hops
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

impl Topology {
    /// Builds a [`Route`] from an explicit node sequence, validating that the
    /// sequence is a simple path of this topology.
    ///
    /// # Errors
    ///
    /// Returns an error if the sequence is shorter than two nodes, references
    /// unknown nodes, repeats a node, or contains a hop with no link.
    pub fn route_from_nodes(&self, nodes: &[NodeId]) -> Result<Route, NetError> {
        if nodes.len() < 2 {
            return Err(NetError::NoRoute {
                source: nodes.first().copied().unwrap_or_default(),
                destination: nodes.last().copied().unwrap_or_default(),
            });
        }
        for &n in nodes {
            if n.index() >= self.node_count() {
                return Err(NetError::UnknownNode(n));
            }
        }
        for (i, &n) in nodes.iter().enumerate() {
            if nodes[..i].contains(&n) {
                return Err(NetError::RepeatedNode(n));
            }
        }
        let mut links = Vec::with_capacity(nodes.len() - 1);
        for pair in nodes.windows(2) {
            let link = self
                .link_between(pair[0], pair[1])
                .ok_or(NetError::DisconnectedPath {
                    from: pair[0],
                    to: pair[1],
                })?;
            links.push(link);
        }
        Ok(Route::new(nodes.to_vec(), links))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkSpec, NodeKind};

    fn small() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let s = t.add_node("s", NodeKind::Sensor);
        let a = t.add_node("a", NodeKind::Switch);
        let b = t.add_node("b", NodeKind::Switch);
        let c = t.add_node("c", NodeKind::Controller);
        t.connect(s, a, LinkSpec::automotive_10mbps()).unwrap();
        t.connect(a, b, LinkSpec::automotive_10mbps()).unwrap();
        t.connect(b, c, LinkSpec::automotive_10mbps()).unwrap();
        (t, vec![s, a, b, c])
    }

    #[test]
    fn valid_route_construction() {
        let (t, n) = small();
        let r = t.route_from_nodes(&n).unwrap();
        assert_eq!(r.source(), n[0]);
        assert_eq!(r.destination(), n[3]);
        assert_eq!(r.hop_count(), 3);
        assert_eq!(r.switch_count(&t), 2);
        assert_eq!(r.nodes().len(), 4);
        assert_eq!(r.links().len(), 3);
        assert!(r.contains_node(n[1]));
        assert!(r.contains_link(t.link_between(n[1], n[2]).unwrap()));
        assert!(!r.contains_link(t.link_between(n[2], n[1]).unwrap()));
    }

    #[test]
    fn base_delay_accumulates_hops() {
        let (t, n) = small();
        let r = t.route_from_nodes(&n).unwrap();
        // 3 links * 1.2 ms + 2 switches * 5 us
        let expected = Time::from_micros(3 * 1200 + 2 * 5);
        assert_eq!(r.base_delay(&t, 1500, Time::from_micros(5)), expected);
    }

    #[test]
    fn disconnected_and_repeated_paths_rejected() {
        let (t, n) = small();
        assert_eq!(
            t.route_from_nodes(&[n[0], n[2]]),
            Err(NetError::DisconnectedPath {
                from: n[0],
                to: n[2]
            })
        );
        assert_eq!(
            t.route_from_nodes(&[n[0], n[1], n[0]]),
            Err(NetError::RepeatedNode(n[0]))
        );
        assert!(t.route_from_nodes(&[n[0]]).is_err());
        assert_eq!(
            t.route_from_nodes(&[n[0], NodeId::new(99)]),
            Err(NetError::UnknownNode(NodeId::new(99)))
        );
    }

    #[test]
    fn shared_links_are_direction_sensitive() {
        let (t, n) = small();
        let r1 = t.route_from_nodes(&n).unwrap();
        let r2 = t.route_from_nodes(&[n[1], n[2], n[3]]).unwrap();
        let shared: Vec<_> = r1.shared_links(&r2).collect();
        assert_eq!(shared.len(), 2);
        let reverse = t.route_from_nodes(&[n[2], n[1]]).unwrap();
        assert_eq!(r1.shared_links(&reverse).count(), 0);
    }

    #[test]
    fn display_lists_nodes() {
        let (t, n) = small();
        let r = t.route_from_nodes(&n).unwrap();
        assert_eq!(r.to_string(), "n0 -> n1 -> n2 -> n3");
    }
}
