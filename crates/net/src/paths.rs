//! Path enumeration: shortest paths, Yen's K-shortest paths and bounded
//! enumeration of all simple paths.
//!
//! These algorithms feed the route-candidate generation of the synthesizer:
//! the paper's *route subset* heuristic (Section V-C1) keeps only the first
//! `K` shortest routes of each control application, while the basic solution
//! considers all simple routes.

use std::collections::{BTreeSet, VecDeque};

use crate::{NetError, NodeId, Route, Topology};

impl Topology {
    /// Returns `true` if `node` may appear as an *intermediate* hop of a
    /// route, i.e. it is a switch. End stations only ever appear as route
    /// endpoints.
    fn is_forwarding_node(&self, node: NodeId) -> bool {
        self.node(node).kind().is_switch()
    }

    fn check_route_endpoints(&self, source: NodeId, destination: NodeId) -> Result<(), NetError> {
        if source.index() >= self.node_count() {
            return Err(NetError::UnknownNode(source));
        }
        if destination.index() >= self.node_count() {
            return Err(NetError::UnknownNode(destination));
        }
        if source == destination {
            return Err(NetError::InvalidEndpoints {
                source,
                destination,
            });
        }
        Ok(())
    }

    /// The shortest route (minimum hop count) from `source` to `destination`
    /// that only traverses switches in between.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoRoute`] if the destination is unreachable and
    /// [`NetError::UnknownNode`] / [`NetError::InvalidEndpoints`] for invalid
    /// arguments.
    pub fn shortest_route(&self, source: NodeId, destination: NodeId) -> Result<Route, NetError> {
        self.check_route_endpoints(source, destination)?;
        let mut prev: Vec<Option<NodeId>> = vec![None; self.node_count()];
        let mut seen = vec![false; self.node_count()];
        let mut queue = VecDeque::new();
        seen[source.index()] = true;
        queue.push_back(source);
        while let Some(n) = queue.pop_front() {
            if n == destination {
                break;
            }
            // Only switches (or the source itself) may forward.
            if n != source && !self.is_forwarding_node(n) {
                continue;
            }
            for next in self.neighbors(n) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    prev[next.index()] = Some(n);
                    queue.push_back(next);
                }
            }
        }
        if !seen[destination.index()] {
            return Err(NetError::NoRoute {
                source,
                destination,
            });
        }
        let mut nodes = vec![destination];
        let mut cur = destination;
        while let Some(p) = prev[cur.index()] {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        self.route_from_nodes(&nodes)
    }

    /// The `k` shortest loop-free routes from `source` to `destination`
    /// (Yen's algorithm over hop count), ordered by increasing length.
    ///
    /// Fewer than `k` routes are returned when the topology does not contain
    /// that many simple paths. This implements the paper's *route subset*
    /// heuristic input.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoRoute`] if no route exists at all, and the usual
    /// argument errors.
    pub fn k_shortest_routes(
        &self,
        source: NodeId,
        destination: NodeId,
        k: usize,
    ) -> Result<Vec<Route>, NetError> {
        self.check_route_endpoints(source, destination)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        let first = self.shortest_route(source, destination)?;
        let mut result: Vec<Route> = vec![first];
        // Candidate set ordered by (hop count, node sequence) for determinism.
        let mut candidates: BTreeSet<(usize, Vec<NodeId>)> = BTreeSet::new();

        while result.len() < k {
            let last = result.last().expect("result never empty").clone();
            // For each node of the previous shortest path except the last,
            // compute a spur path that deviates at that node.
            for i in 0..last.nodes().len() - 1 {
                let spur_node = last.nodes()[i];
                let root: Vec<NodeId> = last.nodes()[..=i].to_vec();

                // Links removed: for every already accepted route sharing the
                // same root, forbid its next hop out of the spur node.
                let mut banned_next: Vec<NodeId> = Vec::new();
                for r in &result {
                    if r.nodes().len() > i && r.nodes()[..=i] == root[..] {
                        banned_next.push(r.nodes()[i + 1]);
                    }
                }
                // Nodes of the root (except the spur node) must not reappear.
                let banned_nodes: Vec<NodeId> = root[..i].to_vec();

                if let Some(spur) =
                    self.constrained_shortest(spur_node, destination, &banned_nodes, &banned_next)
                {
                    let mut total = root.clone();
                    total.extend_from_slice(&spur[1..]);
                    // The concatenation might still repeat a node if the spur
                    // re-enters the root; skip those.
                    let mut unique = BTreeSet::new();
                    if total.iter().all(|n| unique.insert(*n)) {
                        candidates.insert((total.len(), total));
                    }
                }
            }
            let Some((_, nodes)) = candidates.iter().next().cloned() else {
                break;
            };
            candidates.remove(&(nodes.len(), nodes.clone()));
            if result.iter().any(|r| r.nodes() == nodes.as_slice()) {
                continue;
            }
            result.push(self.route_from_nodes(&nodes)?);
        }
        Ok(result)
    }

    /// BFS shortest path avoiding `banned_nodes` entirely and avoiding the
    /// given first hops out of `source`.
    fn constrained_shortest(
        &self,
        source: NodeId,
        destination: NodeId,
        banned_nodes: &[NodeId],
        banned_first_hops: &[NodeId],
    ) -> Option<Vec<NodeId>> {
        let mut prev: Vec<Option<NodeId>> = vec![None; self.node_count()];
        let mut seen = vec![false; self.node_count()];
        for &b in banned_nodes {
            seen[b.index()] = true;
        }
        let mut queue = VecDeque::new();
        seen[source.index()] = true;
        queue.push_back(source);
        while let Some(n) = queue.pop_front() {
            if n == destination {
                break;
            }
            if n != source && !self.is_forwarding_node(n) {
                continue;
            }
            for next in self.neighbors(n) {
                if n == source && banned_first_hops.contains(&next) {
                    continue;
                }
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    prev[next.index()] = Some(n);
                    queue.push_back(next);
                }
            }
        }
        if !seen[destination.index()]
            || (destination != source && prev[destination.index()].is_none())
        {
            return None;
        }
        let mut nodes = vec![destination];
        let mut cur = destination;
        while let Some(p) = prev[cur.index()] {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        if nodes.first() != Some(&source) {
            return None;
        }
        Some(nodes)
    }

    /// Enumerates all simple routes from `source` to `destination` whose hop
    /// count does not exceed `max_hops`, stopping after `max_routes` routes.
    ///
    /// This corresponds to the paper's *basic* formulation in which all
    /// possible routes of a message are considered; the bounds exist only to
    /// keep enumeration finite on dense topologies.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoRoute`] if no route exists within the bounds.
    pub fn all_simple_routes(
        &self,
        source: NodeId,
        destination: NodeId,
        max_hops: usize,
        max_routes: usize,
    ) -> Result<Vec<Route>, NetError> {
        self.check_route_endpoints(source, destination)?;
        let mut routes = Vec::new();
        let mut stack: Vec<NodeId> = vec![source];
        let mut on_path = vec![false; self.node_count()];
        on_path[source.index()] = true;
        self.dfs_simple(
            source,
            destination,
            max_hops,
            max_routes,
            &mut stack,
            &mut on_path,
            &mut routes,
        );
        if routes.is_empty() {
            return Err(NetError::NoRoute {
                source,
                destination,
            });
        }
        // Order by hop count, then lexicographically, for determinism.
        routes.sort_by(|a: &Route, b: &Route| {
            a.hop_count()
                .cmp(&b.hop_count())
                .then_with(|| a.nodes().cmp(b.nodes()))
        });
        Ok(routes)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_simple(
        &self,
        current: NodeId,
        destination: NodeId,
        max_hops: usize,
        max_routes: usize,
        stack: &mut Vec<NodeId>,
        on_path: &mut [bool],
        routes: &mut Vec<Route>,
    ) {
        if routes.len() >= max_routes {
            return;
        }
        if current == destination {
            if let Ok(route) = self.route_from_nodes(stack) {
                routes.push(route);
            }
            return;
        }
        if stack.len() > max_hops {
            return;
        }
        if current != stack[0] && !self.is_forwarding_node(current) {
            return;
        }
        for next in self.neighbors(current) {
            if on_path[next.index()] {
                continue;
            }
            stack.push(next);
            on_path[next.index()] = true;
            self.dfs_simple(
                next,
                destination,
                max_hops,
                max_routes,
                stack,
                on_path,
                routes,
            );
            on_path[next.index()] = false;
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkSpec, NodeKind};

    /// A diamond with a long detour:
    ///
    /// ```text
    ///      s - a - b - c  (c = controller)
    ///          |   |
    ///          d - e
    ///          |
    ///          f (extra switch, dead end)
    /// ```
    fn diamond() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let s = t.add_node("s", NodeKind::Sensor);
        let a = t.add_node("a", NodeKind::Switch);
        let b = t.add_node("b", NodeKind::Switch);
        let c = t.add_node("c", NodeKind::Controller);
        let d = t.add_node("d", NodeKind::Switch);
        let e = t.add_node("e", NodeKind::Switch);
        let f = t.add_node("f", NodeKind::Switch);
        let spec = LinkSpec::fast_ethernet();
        t.connect(s, a, spec).unwrap();
        t.connect(a, b, spec).unwrap();
        t.connect(b, c, spec).unwrap();
        t.connect(a, d, spec).unwrap();
        t.connect(d, e, spec).unwrap();
        t.connect(e, b, spec).unwrap();
        t.connect(d, f, spec).unwrap();
        (t, s, c)
    }

    #[test]
    fn shortest_route_minimizes_hops() {
        let (t, s, c) = diamond();
        let r = t.shortest_route(s, c).unwrap();
        assert_eq!(r.hop_count(), 3);
        assert_eq!(r.source(), s);
        assert_eq!(r.destination(), c);
    }

    #[test]
    fn k_shortest_returns_increasing_lengths_without_duplicates() {
        let (t, s, c) = diamond();
        let routes = t.k_shortest_routes(s, c, 4).unwrap();
        assert_eq!(routes.len(), 2, "diamond has exactly two simple routes");
        assert_eq!(routes[0].hop_count(), 3);
        assert_eq!(routes[1].hop_count(), 5);
        assert_ne!(routes[0], routes[1]);
    }

    #[test]
    fn k_shortest_respects_k() {
        let (t, s, c) = diamond();
        let routes = t.k_shortest_routes(s, c, 1).unwrap();
        assert_eq!(routes.len(), 1);
        assert!(t.k_shortest_routes(s, c, 0).unwrap().is_empty());
    }

    #[test]
    fn all_simple_routes_enumerates_everything() {
        let (t, s, c) = diamond();
        let routes = t.all_simple_routes(s, c, 16, 1000).unwrap();
        assert_eq!(routes.len(), 2);
        // Sorted by hop count.
        assert!(routes[0].hop_count() <= routes[1].hop_count());
    }

    #[test]
    fn all_simple_routes_honours_bounds() {
        let (t, s, c) = diamond();
        let routes = t.all_simple_routes(s, c, 3, 1000).unwrap();
        assert_eq!(routes.len(), 1, "only the short route fits in 3 hops");
        let routes = t.all_simple_routes(s, c, 16, 1).unwrap();
        assert_eq!(routes.len(), 1);
    }

    #[test]
    fn routes_never_traverse_end_stations() {
        // s - a - c1, and c2 - a: route s->c2 must not pass through c1.
        let mut t = Topology::new();
        let s = t.add_node("s", NodeKind::Sensor);
        let a = t.add_node("a", NodeKind::Switch);
        let c1 = t.add_node("c1", NodeKind::Controller);
        let c2 = t.add_node("c2", NodeKind::Controller);
        let spec = LinkSpec::fast_ethernet();
        t.connect(s, a, spec).unwrap();
        t.connect(a, c1, spec).unwrap();
        t.connect(a, c2, spec).unwrap();
        let r = t.shortest_route(s, c2).unwrap();
        assert!(!r.contains_node(c1));
        let all = t.all_simple_routes(s, c2, 10, 100).unwrap();
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn unreachable_destination_is_an_error() {
        let mut t = Topology::new();
        let s = t.add_node("s", NodeKind::Sensor);
        let a = t.add_node("a", NodeKind::Switch);
        let c = t.add_node("c", NodeKind::Controller);
        t.connect(s, a, LinkSpec::fast_ethernet()).unwrap();
        assert_eq!(
            t.shortest_route(s, c),
            Err(NetError::NoRoute {
                source: s,
                destination: c
            })
        );
        assert!(t.k_shortest_routes(s, c, 3).is_err());
        assert!(t.all_simple_routes(s, c, 10, 10).is_err());
    }

    #[test]
    fn same_endpoints_rejected() {
        let (t, s, _) = diamond();
        assert!(matches!(
            t.shortest_route(s, s),
            Err(NetError::InvalidEndpoints { .. })
        ));
    }

    #[test]
    fn k_shortest_on_larger_mesh_is_deterministic() {
        // 3x3 switch grid with a sensor on one corner and controller on the
        // opposite corner: many equal-length routes, results must be stable.
        let mut t = Topology::new();
        let spec = LinkSpec::fast_ethernet();
        let mut grid = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                grid.push(t.add_node(format!("sw{r}{c}"), NodeKind::Switch));
            }
        }
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    t.connect(grid[r * 3 + c], grid[r * 3 + c + 1], spec)
                        .unwrap();
                }
                if r + 1 < 3 {
                    t.connect(grid[r * 3 + c], grid[(r + 1) * 3 + c], spec)
                        .unwrap();
                }
            }
        }
        let s = t.add_node("s", NodeKind::Sensor);
        let c = t.add_node("c", NodeKind::Controller);
        t.connect(s, grid[0], spec).unwrap();
        t.connect(c, grid[8], spec).unwrap();

        let a = t.k_shortest_routes(s, c, 8).unwrap();
        let b = t.k_shortest_routes(s, c, 8).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Hop counts must be non-decreasing.
        for w in a.windows(2) {
            assert!(w[0].hop_count() <= w[1].hop_count());
        }
        // All returned routes are distinct.
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert_ne!(a[i], a[j]);
            }
        }
    }
}
