//! Nodes of the network topology.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// The role a node plays in the networked control system.
///
/// The paper's system model (Section II) distinguishes Ethernet switches,
/// sensors (message sources) and controllers (message sinks). End stations
/// (sensors and controllers) have a single port; switches forward traffic
/// between multiple ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An IEEE 802.1Qbv Ethernet switch with scheduled egress queues.
    Switch,
    /// A sensor end station, the source of a periodic message flow.
    Sensor,
    /// A controller end station, the destination of a message flow.
    Controller,
}

impl NodeKind {
    /// Returns `true` for end stations (sensors and controllers).
    pub const fn is_end_station(self) -> bool {
        matches!(self, NodeKind::Sensor | NodeKind::Controller)
    }

    /// Returns `true` for switches.
    pub const fn is_switch(self) -> bool {
        matches!(self, NodeKind::Switch)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Switch => "switch",
            NodeKind::Sensor => "sensor",
            NodeKind::Controller => "controller",
        };
        f.write_str(s)
    }
}

/// A node of the topology: an Ethernet switch, a sensor or a controller.
///
/// # Example
///
/// ```
/// use tsn_net::{NodeKind, Topology};
///
/// let mut topo = Topology::new();
/// let id = topo.add_node("SW0", NodeKind::Switch);
/// let node = topo.node(id);
/// assert_eq!(node.name(), "SW0");
/// assert!(node.kind().is_switch());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    name: String,
    kind: NodeKind,
}

impl Node {
    pub(crate) fn new(id: NodeId, name: impl Into<String>, kind: NodeKind) -> Self {
        Node {
            id,
            name: name.into(),
            kind,
        }
    }

    /// The identifier of this node.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The human-readable name of this node.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The role of this node.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Switch.is_switch());
        assert!(!NodeKind::Switch.is_end_station());
        assert!(NodeKind::Sensor.is_end_station());
        assert!(NodeKind::Controller.is_end_station());
        assert!(!NodeKind::Controller.is_switch());
    }

    #[test]
    fn node_accessors() {
        let n = Node::new(NodeId::new(2), "radar", NodeKind::Sensor);
        assert_eq!(n.id(), NodeId::new(2));
        assert_eq!(n.name(), "radar");
        assert_eq!(n.kind(), NodeKind::Sensor);
        assert_eq!(n.to_string(), "radar (sensor)");
    }
}
