//! Property tests for path enumeration: on every topology we build, the
//! k-shortest routes must be simple (no repeated nodes), sorted by hop count,
//! distinct, and actually connect the requested sensor to the requested
//! controller.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsn_net::{builders, LinkSpec, NodeId, Route, Topology};

/// Asserts the route-set properties for `k_shortest_routes(source, dest, k)`.
fn assert_route_properties(topo: &Topology, source: NodeId, destination: NodeId, k: usize) {
    let routes = topo
        .k_shortest_routes(source, destination, k)
        .expect("route enumeration must succeed for connected endpoints");
    assert!(
        !routes.is_empty(),
        "no route found from {source:?} to {destination:?}"
    );
    assert!(routes.len() <= k, "more than k routes returned");

    for route in &routes {
        // Endpoints connect sensor to controller.
        assert_eq!(route.source(), source, "route starts at the wrong node");
        assert_eq!(
            route.destination(),
            destination,
            "route ends at the wrong node"
        );
        // Simple: no repeated nodes.
        let mut nodes: Vec<NodeId> = route.nodes().to_vec();
        let hop_count = route.hop_count();
        nodes.sort();
        let before = nodes.len();
        nodes.dedup();
        assert_eq!(nodes.len(), before, "route repeats a node: {route:?}");
        // Links and nodes are consistent: n hops need n+1 nodes.
        assert_eq!(route.links().len(), hop_count, "links/hop_count mismatch");
        assert_eq!(
            route.nodes().len(),
            hop_count + 1,
            "nodes/hop_count mismatch"
        );
        // Every consecutive node pair is actually linked in the topology.
        for (pair, &link) in route.nodes().windows(2).zip(route.links()) {
            let found = topo
                .link_between(pair[0], pair[1])
                .expect("route uses a nonexistent link");
            let l = topo.link(link);
            assert!(
                (l.source(), l.target()) == (pair[0], pair[1]),
                "route link does not match its node pair"
            );
            assert_eq!(found, link, "route link differs from topology's link");
        }
    }

    // Sorted by hop count (Yen's algorithm yields non-decreasing lengths).
    for pair in routes.windows(2) {
        assert!(
            pair[0].hop_count() <= pair[1].hop_count(),
            "routes not sorted by hop count: {} then {}",
            pair[0].hop_count(),
            pair[1].hop_count()
        );
    }

    // Pairwise distinct.
    for (i, a) in routes.iter().enumerate() {
        for b in routes.iter().skip(i + 1) {
            assert_ne!(a.nodes(), b.nodes(), "duplicate route returned");
        }
    }

    // The first route is a shortest route.
    let shortest = topo
        .shortest_route(source, destination)
        .expect("shortest route");
    assert_eq!(
        routes[0].hop_count(),
        shortest.hop_count(),
        "first k-shortest route is not shortest"
    );
}

#[test]
fn figure1_routes_are_simple_sorted_and_connecting() {
    let net = builders::figure1_example(LinkSpec::fast_ethernet());
    for &sensor in &net.sensors {
        for &controller in &net.controllers {
            for k in [1, 2, 4, 8] {
                assert_route_properties(&net.topology, sensor, controller, k);
            }
        }
    }
}

#[test]
fn ring_routes_are_simple_sorted_and_connecting() {
    for ring_size in [3usize, 5, 8] {
        let (topology, switches) = builders::switch_ring(ring_size, LinkSpec::fast_ethernet());
        let mut rng = StdRng::seed_from_u64(ring_size as u64);
        let net = builders::attach_end_stations(
            topology,
            &switches,
            2,
            LinkSpec::fast_ethernet(),
            &mut rng,
        );
        for &sensor in &net.sensors {
            for &controller in &net.controllers {
                for k in [1, 2, 4] {
                    assert_route_properties(&net.topology, sensor, controller, k);
                }
            }
        }
    }
}

#[test]
fn grid_mesh_routes_are_simple_sorted_and_connecting() {
    for (rows, cols) in [(2usize, 3usize), (3, 3), (2, 5)] {
        let (topology, switches) = builders::switch_grid(rows, cols, LinkSpec::gigabit_ethernet());
        let mut rng = StdRng::seed_from_u64((rows * 31 + cols) as u64);
        let net = builders::attach_end_stations(
            topology,
            &switches,
            3,
            LinkSpec::gigabit_ethernet(),
            &mut rng,
        );
        for &sensor in &net.sensors {
            for &controller in &net.controllers {
                for k in [1, 3, 6] {
                    assert_route_properties(&net.topology, sensor, controller, k);
                }
            }
        }
    }
}

#[test]
fn ring_offers_two_disjoint_route_families() {
    // On a ring, a sensor and controller attached to different switches must
    // see at least two routes that share no switch-to-switch link.
    let (topology, switches) = builders::switch_ring(6, LinkSpec::fast_ethernet());
    let mut topo = topology;
    let sensor = topo.add_node("S0", tsn_net::NodeKind::Sensor);
    let controller = topo.add_node("C0", tsn_net::NodeKind::Controller);
    topo.connect(sensor, switches[0], LinkSpec::fast_ethernet())
        .expect("attach sensor");
    topo.connect(controller, switches[3], LinkSpec::fast_ethernet())
        .expect("attach controller");
    let routes: Vec<Route> = topo
        .k_shortest_routes(sensor, controller, 4)
        .expect("routes");
    assert!(routes.len() >= 2, "ring should offer both directions");
    let shared: Vec<_> = routes[0].shared_links(&routes[1]).collect();
    // Only the sensor's and controller's access links may be shared.
    for link in shared {
        let l = topo.link(link);
        assert!(
            l.source() == sensor
                || l.target() == sensor
                || l.source() == controller
                || l.target() == controller,
            "ring routes share a backbone link: {l:?}"
        );
    }
}
