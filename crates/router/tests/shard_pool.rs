//! Shard connection-pool resilience: a pooled connection that died while
//! idle must be detected and replaced without the client seeing an error,
//! while a connection that dies *mid-request* (line delivered, no reply)
//! must answer a hard error and never retry — the shard may already have
//! executed the request.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsn_router::{Router, RouterConfig};
use tsn_service::protocol::Response;

/// What a fake shard does with one accepted connection.
#[derive(Clone, Copy)]
enum Script {
    /// Answer every request line with a canned `pong` envelope.
    Serve,
    /// Answer the first request line, then close the connection.
    ServeOneThenClose,
    /// Read (and count) one request line, then close without replying.
    ReadOneThenClose,
}

/// A scripted in-process shard: connection `i` follows `scripts[i]` (extra
/// connections follow [`Script::Serve`]). Every request line received is
/// counted in the returned counter.
fn fake_shard(scripts: Vec<Script>) -> (String, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake shard");
    let addr = listener.local_addr().expect("local addr").to_string();
    let received = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&received);
    std::thread::spawn(move || {
        for i in 0.. {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let script = scripts.get(i).copied().unwrap_or(Script::Serve);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || serve_scripted(stream, script, &counter));
        }
    });
    (addr, received)
}

fn serve_scripted(stream: TcpStream, script: Script, received: &AtomicUsize) {
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut served = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return;
        }
        received.fetch_add(1, Ordering::SeqCst);
        match script {
            Script::ReadOneThenClose => return,
            Script::Serve | Script::ServeOneThenClose => {
                let reply = r#"{"id":1,"cached":false,"elapsed_us":0,"ok":{"type":"pong"}}"#;
                if writer
                    .write_all(reply.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                served += 1;
                if matches!(script, Script::ServeOneThenClose) && served == 1 {
                    return;
                }
            }
        }
    }
}

fn router_for(addr: &str) -> Router {
    Router::new(RouterConfig {
        shards: vec![addr.to_string()],
    })
    .expect("router")
}

const PING: &str = r#"{"id":1,"request":{"type":"ping"}}"#;

/// Polls until the forward succeeds or errors, giving the fake shard's
/// close time to propagate into the router's pooled socket.
fn forward(router: &Router) -> Response {
    Response::parse_line(&router.handle_line(PING)).expect("well-formed envelope")
}

#[test]
fn pooled_connection_that_died_idle_is_replaced_transparently() {
    let (addr, received) = fake_shard(vec![Script::ServeOneThenClose, Script::Serve]);
    let router = router_for(&addr);

    // First forward succeeds and pools the connection; the shard then
    // closes it while it sits idle in the pool.
    assert!(forward(&router).outcome.is_ok(), "first forward must work");

    // Wait until the close is visible on the router's side of the socket
    // (the fake shard closed right after replying, but FIN delivery is
    // asynchronous).
    let deadline = Instant::now() + Duration::from_secs(5);
    let response = loop {
        std::thread::sleep(Duration::from_millis(20));
        let response = forward(&router);
        if response.outcome.is_ok() || Instant::now() > deadline {
            break response;
        }
    };
    let payload = response
        .outcome
        .expect("a stale pool entry must be discarded and the forward retried fresh");
    assert_eq!(
        payload.get("type").and_then(tsn_net::json::Json::as_str),
        Some("pong")
    );
    // The dead pooled connection never saw the second request line: the
    // staleness probe is a peek, not a write.
    assert!(
        received.load(Ordering::SeqCst) >= 2,
        "the fresh connection must have carried the retried line"
    );
}

#[test]
fn mid_request_death_answers_a_hard_error_and_never_retries() {
    let (addr, received) = fake_shard(vec![Script::ReadOneThenClose, Script::Serve]);
    let router = router_for(&addr);

    // The shard reads the line (so it was delivered — it may have executed)
    // and closes without replying.
    let response = forward(&router);
    let message = response
        .outcome
        .expect_err("a reply that never arrives must be an error");
    assert!(
        message.contains("mid-request"),
        "the error must say the request died mid-flight: {message}"
    );
    // Exactly one delivery: retrying a delivered request could execute a
    // non-idempotent request twice.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        received.load(Ordering::SeqCst),
        1,
        "a delivered request must never be re-sent"
    );

    // The router is not wedged: the next forward opens a fresh connection.
    let recovered = forward(&router);
    assert!(
        recovered.outcome.is_ok(),
        "the pool must recover on the next request"
    );
    assert_eq!(received.load(Ordering::SeqCst), 2);
}
