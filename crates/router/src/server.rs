//! The router core: request classification, shard forwarding, fleet
//! aggregation, and shard draining with warm-session migration.
//!
//! The router speaks the same newline-delimited JSON protocol as the
//! daemons it fronts and forwards request lines **verbatim** — a shard sees
//! exactly the bytes the client sent, so shard responses (payloads, error
//! strings, even the diagnostics for malformed lines) are byte-identical
//! to what a single daemon would have produced. The router only *parses*
//! incoming lines far enough to pick a shard: the envelope `id`/`trace`
//! and the request's `type` and `tenant` members.
//!
//! Client sockets are served by the [`tsn_net::poll`] connection plane
//! (one `poll(2)` event loop owning framing, pipelining and write
//! backpressure) and forwards execute on a bounded worker pool keyed per
//! connection, so one client's requests stay strictly ordered while the
//! thread count is fixed no matter how many clients connect.

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tsn_net::framing::{read_one_line, LineRead, MAX_LINE_BYTES};
use tsn_net::json::Json;
use tsn_net::poll::{Completions, ConnId, LineHandler, LineOutcome, PlaneConfig};
use tsn_service::dispatch::{Dispatcher, Job};
use tsn_service::fnv1a64;
use tsn_service::protocol::Response;
use tsn_telemetry::log;

use crate::ring::Ring;

/// Configuration for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The shard fleet: one `host:port` address per `tsn-serviced` daemon.
    /// Order matters — the index into this list is the shard number used
    /// by `directory` and `drain_shard`.
    pub shards: Vec<String>,
}

/// One pooled shard connection: the write half plus a buffered reader.
struct ShardConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ShardConn {
    fn connect(addr: &str) -> std::io::Result<ShardConn> {
        let stream = TcpStream::connect(addr)?;
        // Request and response lines are far below the MSS; Nagle would
        // stall every forwarded round trip on the shard's delayed ACK.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(ShardConn {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line. A send that errors means the shard never
    /// accepted the line, so the caller may safely retry it elsewhere.
    fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Blocks for the one response line to a sent request. Once `send`
    /// succeeded a failure here is **mid-request**: the shard may already
    /// have executed the request, so the caller must not retry it.
    fn recv(&mut self) -> std::io::Result<String> {
        let mut reply = Vec::new();
        // The socket has no read timeout, so WouldBlock cannot surface;
        // loop anyway so a spurious one just retries the read.
        loop {
            match read_one_line(&mut self.reader, &mut reply, MAX_LINE_BYTES) {
                LineRead::Line => return Ok(String::from_utf8_lossy(&reply).into_owned()),
                LineRead::WouldBlock => {}
                LineRead::Eof => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "shard closed the connection",
                    ));
                }
                LineRead::Failed => {
                    return Err(std::io::Error::other("shard connection broke"));
                }
                LineRead::TooLong => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("shard reply exceeds the {MAX_LINE_BYTES}-byte frame cap"),
                    ));
                }
            }
        }
    }

    /// Whether this pooled connection died (or desynced) while idle. A
    /// one-byte nonblocking peek distinguishes the cases without consuming
    /// anything: `WouldBlock` is the only healthy answer for an idle
    /// connection — EOF means the shard closed it, readable bytes mean an
    /// unsolicited reply (the stream is desynced), and any other error
    /// means the socket broke.
    fn is_stale(&mut self) -> bool {
        if !self.reader.buffer().is_empty() {
            // Reply bytes nobody asked for are already a desync.
            return true;
        }
        let stream = self.reader.get_ref();
        if stream.set_nonblocking(true).is_err() {
            return true;
        }
        let mut probe = [0u8; 1];
        let stale = match stream.peek(&mut probe) {
            Ok(_) => true,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
            Err(_) => true,
        };
        stream.set_nonblocking(false).is_err() || stale
    }
}

/// One shard: its address and a pool of idle connections to it.
struct Shard {
    addr: String,
    pool: Mutex<Vec<ShardConn>>,
}

/// The mutable routing state, guarded as one unit so a drain swaps the
/// ring and migrates tenants atomically with respect to request routing.
struct Routing {
    /// `active[i]` is false once shard `i` has been drained.
    active: Vec<bool>,
    /// The consistent-hash ring over the active shards.
    ring: Ring,
    /// Where each open tenant lives. Authoritative over the ring: a
    /// request for a known tenant always goes to its recorded home, so
    /// ring changes can never strand a tenant that has not been migrated.
    homes: BTreeMap<String, usize>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    forwarded: AtomicU64,
    migrations: AtomicU64,
    errors: AtomicU64,
}

/// The sharding front-end. See the [crate docs](crate) for the protocol.
pub struct Router {
    shards: Vec<Shard>,
    routing: Mutex<Routing>,
    counters: Counters,
    shutdown: AtomicBool,
    /// Ids for router-originated shard requests (migrations, probes,
    /// broadcasts). Purely diagnostic — each pooled connection carries one
    /// request at a time, so replies cannot interleave.
    internal_id: AtomicI64,
}

impl Router {
    /// Builds a router over the given fleet.
    ///
    /// # Errors
    ///
    /// Returns an error when the fleet is empty or lists the same address
    /// twice (duplicate addresses would double-count ring points).
    pub fn new(config: RouterConfig) -> Result<Router, String> {
        if config.shards.is_empty() {
            return Err("a router needs at least one shard".to_string());
        }
        let mut seen = std::collections::BTreeSet::new();
        for addr in &config.shards {
            if !seen.insert(addr.as_str()) {
                return Err(format!("duplicate shard address {addr:?}"));
            }
        }
        let active = vec![true; config.shards.len()];
        let ring = Ring::build(&config.shards, &active);
        Ok(Router {
            shards: config
                .shards
                .into_iter()
                .map(|addr| Shard {
                    addr,
                    pool: Mutex::new(Vec::new()),
                })
                .collect(),
            routing: Mutex::new(Routing {
                active,
                ring,
                homes: BTreeMap::new(),
            }),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            internal_id: AtomicI64::new(1),
        })
    }

    /// True once a `shutdown` request has been served.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Tenants the router currently knows a home for.
    pub fn tenant_count(&self) -> usize {
        self.routing.lock().expect("routing lock").homes.len()
    }

    /// Warm-session migrations performed by drains so far.
    pub fn migrations(&self) -> u64 {
        self.counters.migrations.load(Ordering::Relaxed)
    }

    fn next_internal_id(&self) -> i64 {
        self.internal_id.fetch_add(1, Ordering::Relaxed)
    }

    fn addrs(&self) -> Vec<String> {
        self.shards.iter().map(|s| s.addr.clone()).collect()
    }

    /// Routes one request line and returns the one response line (no
    /// trailing newline). Never panics on malformed input — unparseable
    /// lines are forwarded verbatim so a shard's own diagnostics answer.
    pub fn handle_line(&self, line: &str) -> String {
        let started = Instant::now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let doc = match Json::parse(line.trim()) {
            Ok(doc) => doc,
            Err(_) => {
                let shard = self.route_keyless(None, line);
                return self.forward(shard, line, started);
            }
        };
        let id = doc.get("id").and_then(Json::as_i64).unwrap_or(0);
        let trace = doc.get("trace").and_then(Json::as_i64);
        let request = doc.get("request");
        let rtype = request.and_then(|r| r.get("type")).and_then(Json::as_str);
        let tenant = request.and_then(|r| r.get("tenant")).and_then(Json::as_str);
        match rtype {
            Some("directory") => self.local(id, trace, started, Ok(self.directory())),
            Some("drain_shard") => {
                let outcome = match request.and_then(|r| r.get("shard")).and_then(Json::as_i64) {
                    Some(shard) if shard >= 0 => self.drain_shard(shard as usize),
                    _ => Err("drain_shard needs a non-negative \"shard\" member".to_string()),
                };
                self.local(id, trace, started, outcome)
            }
            Some("stats") => {
                let outcome = self.fleet_stats();
                self.local(id, trace, started, outcome)
            }
            Some("metrics") => self.local(id, trace, started, Ok(self.fleet_metrics())),
            Some("health") => self.local(id, trace, started, Ok(self.fleet_health())),
            Some("shutdown") => {
                let notified = self.broadcast_shutdown();
                self.shutdown.store(true, Ordering::SeqCst);
                log::info(
                    "router",
                    "shutdown requested, fleet notified",
                    &[("shards_notified", notified.into())],
                );
                // Reply exactly as a single daemon would, so clients
                // cannot tell a fleet from one daemon.
                self.local(
                    id,
                    trace,
                    started,
                    Ok(Json::obj([("type", Json::from("shutting_down"))])),
                )
            }
            _ => {
                let shard = match tenant {
                    Some(t) => self.route_tenant(t),
                    None => self.route_keyless(request, line),
                };
                let response = self.forward(shard, line, started);
                if let (Some(rtype), Some(tenant)) = (rtype, tenant) {
                    self.note_tenant_lifecycle(rtype, tenant, shard, &response);
                }
                response
            }
        }
    }

    /// The shard a tenant-keyed request goes to: the tenant's recorded
    /// home if it has one, else its consistent-hash position. Public so
    /// test harnesses can predict placements when staging a drain.
    pub fn route_tenant(&self, tenant: &str) -> usize {
        let routing = self.routing.lock().expect("routing lock");
        routing.homes.get(tenant).copied().unwrap_or_else(|| {
            routing
                .ring
                .shard_for_tenant(tenant)
                .expect("the last active shard can never be drained")
        })
    }

    /// The shard a keyless request goes to. Hashing the `request` member
    /// (not the whole line) keeps the envelope `id`/`trace` out of the
    /// key, so identical `synthesize` problems always land on the same
    /// shard and its content-addressed result cache keeps hitting.
    fn route_keyless(&self, request: Option<&Json>, line: &str) -> usize {
        let key = match request {
            Some(request) => request.to_string(),
            None => line.trim().to_string(),
        };
        self.routing
            .lock()
            .expect("routing lock")
            .ring
            .lookup(fnv1a64(key.as_bytes()))
            .expect("the last active shard can never be drained")
    }

    /// Records tenant placements from successful lifecycle responses, so
    /// drains know exactly which tenants live on which shard.
    fn note_tenant_lifecycle(&self, rtype: &str, tenant: &str, shard: usize, response: &str) {
        let succeeded = Json::parse(response.trim())
            .map(|doc| doc.get("ok").is_some())
            .unwrap_or(false);
        if !succeeded {
            return;
        }
        let mut routing = self.routing.lock().expect("routing lock");
        match rtype {
            "open_tenant" => {
                routing.homes.insert(tenant.to_string(), shard);
            }
            "close_tenant" => {
                routing.homes.remove(tenant);
            }
            _ => {}
        }
    }

    /// Forwards one line to a shard and returns the shard's response
    /// line. Unreachable shards answer with a router-built error envelope
    /// (the one case where the router writes a response for a forwarded
    /// request).
    fn forward(&self, shard: usize, line: &str, started: Instant) -> String {
        self.counters.forwarded.fetch_add(1, Ordering::Relaxed);
        match self.round_trip_shard(shard, line) {
            Ok(response) => response,
            Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                log::error(
                    "router.forward",
                    "shard round trip failed",
                    &[("shard", shard.into()), ("error", e.as_str().into())],
                );
                let doc = Json::parse(line.trim()).ok();
                let id = doc
                    .as_ref()
                    .and_then(|d| d.get("id"))
                    .and_then(Json::as_i64)
                    .unwrap_or(0);
                let trace = doc
                    .as_ref()
                    .and_then(|d| d.get("trace"))
                    .and_then(Json::as_i64);
                self.local(id, trace, started, Err(e))
            }
        }
    }

    /// One request/response round trip on a pooled shard connection.
    ///
    /// Pooled connections that died while idle (the shard restarted or
    /// timed the socket out) are detected by a nonblocking peek and
    /// discarded *before* the request line is written. A retry on a fresh
    /// connection happens **only when the line was never delivered** — a
    /// stale pool entry, or a `send` that errored. Once a send succeeded,
    /// a receive failure is a hard mid-request error: the shard may
    /// already have executed the request, and non-idempotent requests
    /// (tenant events, migrations) must never be delivered twice.
    fn round_trip_shard(&self, shard: usize, line: &str) -> Result<String, String> {
        let target = &self.shards[shard];
        loop {
            // Pop via a `let` statement so the pool guard drops at the
            // semicolon. A `while let` scrutinee would keep the guard
            // alive for the whole loop body, and the re-pool below locks
            // the same mutex — instant self-deadlock.
            let popped = target.pool.lock().expect("pool lock").pop();
            let Some(mut conn) = popped else { break };
            if conn.is_stale() {
                log::info(
                    "router.pool",
                    "stale pooled shard connection discarded",
                    &[("shard", shard.into())],
                );
                continue;
            }
            if conn.send(line).is_err() {
                // The line never reached the shard; fall through to the
                // fresh-connection retry below.
                log::info(
                    "router.pool",
                    "pooled shard connection refused the request line, retrying fresh",
                    &[("shard", shard.into())],
                );
                break;
            }
            return match conn.recv() {
                Ok(reply) => {
                    target.pool.lock().expect("pool lock").push(conn);
                    Ok(reply)
                }
                Err(e) => Err(format!(
                    "shard {shard} ({}) failed mid-request: {e}",
                    target.addr
                )),
            };
        }
        let mut conn = ShardConn::connect(&target.addr)
            .map_err(|e| format!("shard {shard} ({}) unreachable: {e}", target.addr))?;
        conn.send(line)
            .map_err(|e| format!("shard {shard} ({}) unreachable: {e}", target.addr))?;
        let reply = conn
            .recv()
            .map_err(|e| format!("shard {shard} ({}) failed mid-request: {e}", target.addr))?;
        target.pool.lock().expect("pool lock").push(conn);
        Ok(reply)
    }

    /// Decodes a shard reply far enough to extract the `ok` payload.
    fn ok_payload(reply: &str) -> Result<Json, String> {
        let doc = Json::parse(reply.trim()).map_err(|e| format!("malformed shard reply: {e}"))?;
        if let Some(payload) = doc.get("ok") {
            return Ok(payload.clone());
        }
        match doc.get("error").and_then(Json::as_str) {
            Some(message) => Err(message.to_string()),
            None => Err("shard reply carries neither \"ok\" nor \"error\"".to_string()),
        }
    }

    /// Builds a router-local response envelope, identical in shape to a
    /// daemon's.
    fn local(
        &self,
        id: i64,
        trace: Option<i64>,
        started: Instant,
        outcome: Result<Json, String>,
    ) -> String {
        if outcome.is_err() {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        Response {
            id,
            trace,
            cached: false,
            elapsed_us: i64::try_from(started.elapsed().as_micros()).unwrap_or(i64::MAX),
            retry_after_ms: None,
            outcome,
        }
        .to_line()
    }

    /// Serves a `directory` request: the fleet roster with per-shard
    /// liveness, occupancy, and identity (probed via each shard's
    /// `health` request).
    fn directory(&self) -> Json {
        let routing = self.routing.lock().expect("routing lock");
        let probe = Json::obj([
            ("id", Json::Int(self.next_internal_id())),
            ("request", Json::obj([("type", Json::from("health"))])),
        ])
        .to_string();
        let mut entries = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let tenants_here = routing.homes.values().filter(|s| **s == i).count();
            let mut pairs = vec![
                ("shard".to_string(), Json::from(i)),
                ("addr".to_string(), Json::from(shard.addr.as_str())),
                ("active".to_string(), Json::Bool(routing.active[i])),
                ("tenants".to_string(), Json::from(tenants_here)),
            ];
            match self
                .round_trip_shard(i, &probe)
                .and_then(|reply| Router::ok_payload(&reply))
            {
                Ok(health) => {
                    pairs.push(("healthy".to_string(), Json::Bool(true)));
                    for key in ["shard_id", "sessions", "uptime_us"] {
                        if let Some(value) = health.get(key) {
                            pairs.push((key.to_string(), value.clone()));
                        }
                    }
                }
                Err(e) => {
                    pairs.push(("healthy".to_string(), Json::Bool(false)));
                    pairs.push(("error".to_string(), Json::from(e.as_str())));
                }
            }
            entries.push(Json::Obj(pairs));
        }
        Json::obj([
            ("type", Json::from("directory")),
            ("tenants", Json::from(routing.homes.len())),
            (
                "migrations",
                Json::Int(self.counters.migrations.load(Ordering::Relaxed) as i64),
            ),
            ("shards", Json::Arr(entries)),
        ])
    }

    /// Serves a `stats` request by fanning out to every active shard and
    /// summing the numeric counters, so the fleet answers like one big
    /// daemon. Adds `shards` (active count) and `migrations` on top.
    fn fleet_stats(&self) -> Result<Json, String> {
        let active: Vec<usize> = {
            let routing = self.routing.lock().expect("routing lock");
            (0..self.shards.len())
                .filter(|i| routing.active[*i])
                .collect()
        };
        let probe = Json::obj([
            ("id", Json::Int(self.next_internal_id())),
            ("request", Json::obj([("type", Json::from("stats"))])),
        ])
        .to_string();
        // First-seen member order is preserved, so the summed payload
        // keeps the daemon's own key order.
        let mut sums: Vec<(String, i64)> = Vec::new();
        for shard in &active {
            let reply = self.round_trip_shard(*shard, &probe)?;
            let payload =
                Router::ok_payload(&reply).map_err(|e| format!("stats from shard {shard}: {e}"))?;
            let Json::Obj(members) = payload else {
                return Err(format!(
                    "stats from shard {shard}: payload is not an object"
                ));
            };
            for (key, value) in members {
                if key == "type" {
                    continue;
                }
                let Some(n) = value.as_i64() else { continue };
                match sums.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, total)) => *total += n,
                    None => sums.push((key, n)),
                }
            }
        }
        let mut pairs = vec![("type".to_string(), Json::from("stats"))];
        pairs.extend(sums.into_iter().map(|(k, v)| (k, Json::Int(v))));
        pairs.push(("shards".to_string(), Json::from(active.len())));
        pairs.push((
            "migrations".to_string(),
            Json::Int(self.counters.migrations.load(Ordering::Relaxed) as i64),
        ));
        Ok(Json::Obj(pairs))
    }

    /// Serves a `health` request: fleet totals plus every shard's own
    /// health payload (drained and unreachable shards included, marked).
    fn fleet_health(&self) -> Json {
        let active: Vec<bool> = self.routing.lock().expect("routing lock").active.clone();
        let probe = Json::obj([
            ("id", Json::Int(self.next_internal_id())),
            ("request", Json::obj([("type", Json::from("health"))])),
        ])
        .to_string();
        let mut tenants = 0i64;
        let mut sessions = 0i64;
        let mut entries = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let mut pairs = vec![
                ("shard".to_string(), Json::from(i)),
                ("addr".to_string(), Json::from(shard.addr.as_str())),
                ("active".to_string(), Json::Bool(active[i])),
            ];
            match self
                .round_trip_shard(i, &probe)
                .and_then(|reply| Router::ok_payload(&reply))
            {
                Ok(health) => {
                    tenants += health.get("tenants").and_then(Json::as_i64).unwrap_or(0);
                    sessions += health.get("sessions").and_then(Json::as_i64).unwrap_or(0);
                    pairs.push(("health".to_string(), health));
                }
                Err(e) => pairs.push(("error".to_string(), Json::from(e.as_str()))),
            }
            entries.push(Json::Obj(pairs));
        }
        Json::obj([
            ("type", Json::from("health")),
            ("tenants", Json::Int(tenants)),
            ("sessions", Json::Int(sessions)),
            (
                "migrations",
                Json::Int(self.counters.migrations.load(Ordering::Relaxed) as i64),
            ),
            ("shards", Json::Arr(entries)),
        ])
    }

    /// Serves a `metrics` request: every active shard's exposition text,
    /// labeled by shard.
    fn fleet_metrics(&self) -> Json {
        let active: Vec<bool> = self.routing.lock().expect("routing lock").active.clone();
        let probe = Json::obj([
            ("id", Json::Int(self.next_internal_id())),
            ("request", Json::obj([("type", Json::from("metrics"))])),
        ])
        .to_string();
        let mut entries = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if !active[i] {
                continue;
            }
            let mut pairs = vec![
                ("shard".to_string(), Json::from(i)),
                ("addr".to_string(), Json::from(shard.addr.as_str())),
            ];
            match self
                .round_trip_shard(i, &probe)
                .and_then(|reply| Router::ok_payload(&reply))
            {
                Ok(payload) => match payload.get("exposition") {
                    Some(exposition) => pairs.push(("exposition".to_string(), exposition.clone())),
                    None => pairs.push((
                        "error".to_string(),
                        Json::from("shard metrics payload carries no exposition"),
                    )),
                },
                Err(e) => pairs.push(("error".to_string(), Json::from(e.as_str()))),
            }
            entries.push(Json::Obj(pairs));
        }
        Json::obj([
            ("type", Json::from("metrics")),
            ("shards", Json::Arr(entries)),
        ])
    }

    /// Broadcasts `shutdown` to every shard (drained ones too — they are
    /// still running, just empty) and returns how many acknowledged.
    fn broadcast_shutdown(&self) -> usize {
        let line = Json::obj([
            ("id", Json::Int(self.next_internal_id())),
            ("request", Json::obj([("type", Json::from("shutdown"))])),
        ])
        .to_string();
        (0..self.shards.len())
            .filter(|shard| self.round_trip_shard(*shard, &line).is_ok())
            .count()
    }

    /// Drains one shard: removes it from the ring, then moves every
    /// tenant homed there to its new consistent-hash home via
    /// `migrate_out`/`migrate_in` — the warm solver session travels in
    /// the snapshot, so migrated tenants resume without a cold re-solve.
    ///
    /// The routing lock is held for the whole drain: no request can race
    /// a tenant mid-move. The drained daemon keeps running (and keeps
    /// answering direct probes) until it is shut down.
    fn drain_shard(&self, shard: usize) -> Result<Json, String> {
        if shard >= self.shards.len() {
            return Err(format!(
                "no such shard {shard} (the fleet has {})",
                self.shards.len()
            ));
        }
        let mut routing = self.routing.lock().expect("routing lock");
        if !routing.active[shard] {
            return Err(format!("shard {shard} is already drained"));
        }
        if routing.active.iter().filter(|a| **a).count() < 2 {
            return Err("cannot drain the last active shard".to_string());
        }
        routing.active[shard] = false;
        routing.ring = Ring::build(&self.addrs(), &routing.active);
        let moving: Vec<String> = routing
            .homes
            .iter()
            .filter(|(_, home)| **home == shard)
            .map(|(tenant, _)| tenant.clone())
            .collect();
        let mut migrated = 0i64;
        for tenant in &moving {
            let target = routing
                .ring
                .shard_for_tenant(tenant)
                .expect("at least one shard stays active");
            self.migrate_tenant(tenant, shard, target)?;
            routing.homes.insert(tenant.clone(), target);
            migrated += 1;
            self.counters.migrations.fetch_add(1, Ordering::Relaxed);
        }
        log::info(
            "router.drain",
            "shard drained",
            &[("shard", shard.into()), ("migrated", migrated.into())],
        );
        Ok(Json::obj([
            ("type", Json::from("shard_drained")),
            ("shard", Json::from(shard)),
            ("addr", Json::from(self.shards[shard].addr.as_str())),
            ("migrated", Json::Int(migrated)),
        ]))
    }

    /// Moves one tenant: `migrate_out` on the donor, `migrate_in` on the
    /// target, passing the snapshot JSON through untouched. If the target
    /// refuses the snapshot, the tenant is restored to the donor so the
    /// exported session is never lost.
    fn migrate_tenant(&self, tenant: &str, from: usize, to: usize) -> Result<(), String> {
        let out_line = Json::obj([
            ("id", Json::Int(self.next_internal_id())),
            (
                "request",
                Json::obj([
                    ("type", Json::from("migrate_out")),
                    ("tenant", Json::from(tenant)),
                ]),
            ),
        ])
        .to_string();
        let reply = self.round_trip_shard(from, &out_line)?;
        let payload = Router::ok_payload(&reply)
            .map_err(|e| format!("migrate_out of {tenant:?} from shard {from}: {e}"))?;
        let snapshot = payload
            .get("snapshot")
            .cloned()
            .ok_or_else(|| format!("migrate_out reply for {tenant:?} carries no snapshot"))?;
        let in_line = |shard_snapshot: Json| {
            Json::obj([
                ("id", Json::Int(self.next_internal_id())),
                (
                    "request",
                    Json::obj([
                        ("type", Json::from("migrate_in")),
                        ("tenant", Json::from(tenant)),
                        ("snapshot", shard_snapshot),
                    ]),
                ),
            ])
            .to_string()
        };
        match self
            .round_trip_shard(to, &in_line(snapshot.clone()))
            .and_then(|reply| Router::ok_payload(&reply))
        {
            Ok(installed) => {
                let warm = installed
                    .get("warm")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                log::info(
                    "router.migrate",
                    "tenant migrated",
                    &[
                        ("tenant", tenant.into()),
                        ("from", from.into()),
                        ("to", to.into()),
                        ("warm", warm.into()),
                    ],
                );
                Ok(())
            }
            Err(e) => {
                let restored = self
                    .round_trip_shard(from, &in_line(snapshot))
                    .and_then(|reply| Router::ok_payload(&reply))
                    .is_ok();
                Err(format!(
                    "migrate_in of {tenant:?} to shard {to}: {e}{}",
                    if restored {
                        " (tenant restored to its original shard)"
                    } else {
                        " (tenant could NOT be restored — its session is lost)"
                    }
                ))
            }
        }
    }
}

/// Worker threads of the forward pool. Router workers spend their time
/// blocked on shard round trips, not computing, so the pool is sized well
/// past the core count — it bounds concurrent *forwards*, and one worker
/// per core would serialize the fleet behind a single slow shard.
fn forward_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .saturating_mul(4)
        .clamp(4, 32)
}

/// Serves the router on `listener` until a `shutdown` request arrives,
/// then returns. Client sockets are owned by one [`tsn_net::poll`] event
/// loop (framing, pipelining, write backpressure); forwards run on a
/// scoped worker pool keyed per connection, so one connection's requests
/// are answered strictly in order while different connections forward in
/// parallel — and the thread count stays fixed (the forward workers plus
/// the event loop) no matter how many clients connect. Every request in
/// flight completes before this returns.
///
/// # Errors
///
/// Returns the event loop's I/O error if polling the sockets fails.
pub fn serve(router: &Router, listener: TcpListener) -> std::io::Result<()> {
    let completions = Completions::new()?;
    let dispatcher: Dispatcher = Dispatcher::new();
    std::thread::scope(|scope| {
        for _ in 0..forward_workers() {
            scope.spawn(|| dispatcher.worker_loop());
        }
        let handler = RouterHandler {
            router,
            dispatcher: &dispatcher,
            completions: &completions,
        };
        let result =
            tsn_net::poll::serve_lines(listener, &handler, &completions, &PlaneConfig::default());
        dispatcher.shutdown();
        result
    })
}

/// The application half of the router's connection plane: hands each
/// request line to the forward pool, keyed by connection so a client that
/// pipelines requests gets its responses in request order (the contract
/// the thread-per-connection loop used to provide).
struct RouterHandler<'a, 'env> {
    router: &'env Router,
    dispatcher: &'a Dispatcher<'env>,
    completions: &'env Completions,
}

/// Live client connections (`router_connections` gauge).
fn connections_gauge() -> tsn_telemetry::Gauge {
    tsn_telemetry::registry().gauge("router_connections")
}

impl LineHandler for RouterHandler<'_, '_> {
    fn on_line(&self, conn: ConnId, seq: u64, line: &str) -> LineOutcome {
        if line.trim().is_empty() {
            return LineOutcome::Ignore;
        }
        let router = self.router;
        let completions = self.completions;
        let owned = line.to_string();
        let job: Job<'_> = Box::new(move || {
            let response = router.handle_line(&owned);
            completions.complete(conn, seq, response);
        });
        // One key per connection: same-connection requests serialize in
        // submission order, different connections share the pool freely.
        if let Err(job) = self.dispatcher.submit(Some(format!("conn-{conn}")), job) {
            // The pool only drains after the event loop exits, so this is
            // a cannot-happen guard; answer rather than drop the line.
            drop(job);
            let doc = Json::parse(line.trim()).ok();
            let refused = Response {
                id: doc
                    .as_ref()
                    .and_then(|d| d.get("id"))
                    .and_then(Json::as_i64)
                    .unwrap_or(0),
                trace: doc
                    .as_ref()
                    .and_then(|d| d.get("trace"))
                    .and_then(Json::as_i64),
                cached: false,
                elapsed_us: 0,
                retry_after_ms: None,
                outcome: Err("router is shutting down".to_string()),
            };
            return LineOutcome::Respond(refused.to_line());
        }
        LineOutcome::Pending
    }

    fn on_oversized(&self, _conn: ConnId, limit: usize) -> Option<String> {
        log::warn(
            "router.request",
            "oversized request line rejected",
            &[("limit_bytes", (limit as i64).into())],
        );
        let response = Response {
            id: -1,
            trace: None,
            cached: false,
            elapsed_us: 0,
            retry_after_ms: None,
            outcome: Err(format!(
                "line_too_long: request line exceeds the {limit}-byte frame cap"
            )),
        };
        Some(response.to_line())
    }

    fn on_connect(&self, _conn: ConnId) {
        connections_gauge().add(1);
    }

    fn on_disconnect(&self, _conn: ConnId) {
        connections_gauge().add(-1);
    }

    fn shutting_down(&self) -> bool {
        self.router.shutdown_requested()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Addresses on the TCP discard port: parseable, never listening, so
    /// connects fail fast and these tests stay network-free in effect.
    fn dead_fleet(n: usize) -> RouterConfig {
        RouterConfig {
            shards: (0..n).map(|i| format!("127.0.0.1:{}", 9 + i)).collect(),
        }
    }

    #[test]
    fn new_rejects_empty_and_duplicate_fleets() {
        let empty = Router::new(RouterConfig { shards: vec![] });
        assert!(empty.is_err(), "an empty fleet must be rejected");
        let dup = Router::new(RouterConfig {
            shards: vec!["127.0.0.1:9".into(), "127.0.0.1:9".into()],
        });
        assert_eq!(
            dup.err().as_deref(),
            Some("duplicate shard address \"127.0.0.1:9\"")
        );
    }

    #[test]
    fn keyless_routing_ignores_the_envelope_id() {
        let router = Router::new(dead_fleet(4)).expect("router");
        let a = Json::parse(r#"{"id":1,"request":{"type":"ping"}}"#).expect("json");
        let b = Json::parse(r#"{"id":999,"trace":7,"request":{"type":"ping"}}"#).expect("json");
        assert_eq!(
            router.route_keyless(a.get("request"), "unused"),
            router.route_keyless(b.get("request"), "unused"),
            "the same request body must route to the same shard regardless of envelope"
        );
    }

    #[test]
    fn tenant_routing_prefers_the_recorded_home() {
        let router = Router::new(dead_fleet(4)).expect("router");
        let ring_choice = router.route_tenant("plant-7");
        let forced = (ring_choice + 1) % 4;
        router
            .routing
            .lock()
            .expect("routing lock")
            .homes
            .insert("plant-7".to_string(), forced);
        assert_eq!(
            router.route_tenant("plant-7"),
            forced,
            "a recorded home must override the ring"
        );
    }

    #[test]
    fn drain_validates_its_target() {
        let router = Router::new(dead_fleet(2)).expect("router");
        assert_eq!(
            router.drain_shard(5).err().as_deref(),
            Some("no such shard 5 (the fleet has 2)")
        );
        // No tenants are homed on shard 0, so the drain needs no network.
        let drained = router.drain_shard(0).expect("drain succeeds");
        assert_eq!(
            drained.get("type").and_then(Json::as_str),
            Some("shard_drained")
        );
        assert_eq!(drained.get("migrated").and_then(Json::as_i64), Some(0));
        assert_eq!(
            router.drain_shard(0).err().as_deref(),
            Some("shard 0 is already drained")
        );
        assert_eq!(
            router.drain_shard(1).err().as_deref(),
            Some("cannot drain the last active shard")
        );
    }

    #[test]
    fn unreachable_shards_answer_with_an_error_envelope() {
        let router = Router::new(dead_fleet(1)).expect("router");
        let response = router.handle_line(r#"{"id":42,"trace":9,"request":{"type":"ping"}}"#);
        let reply = Response::parse_line(&response).expect("well-formed envelope");
        assert_eq!(reply.id, 42);
        assert_eq!(reply.trace, Some(9));
        let message = reply.outcome.expect_err("unreachable shard must error");
        assert!(
            message.contains("unreachable"),
            "error should say the shard is unreachable: {message}"
        );
    }

    #[test]
    fn directory_reports_dead_shards_as_unhealthy() {
        let router = Router::new(dead_fleet(2)).expect("router");
        let response = router.handle_line(r#"{"id":1,"request":{"type":"directory"}}"#);
        let reply = Response::parse_line(&response).expect("well-formed envelope");
        let payload = reply.outcome.expect("directory always answers");
        assert_eq!(
            payload.get("type").and_then(Json::as_str),
            Some("directory")
        );
        assert_eq!(payload.get("tenants").and_then(Json::as_i64), Some(0));
        let shards = payload
            .get("shards")
            .and_then(Json::as_arr)
            .expect("roster");
        assert_eq!(shards.len(), 2);
        for entry in shards {
            assert_eq!(entry.get("healthy").and_then(Json::as_bool), Some(false));
            assert_eq!(entry.get("active").and_then(Json::as_bool), Some(true));
        }
    }
}
