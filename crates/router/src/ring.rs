//! The consistent-hash ring that assigns tenants (and keyless requests) to
//! shards.
//!
//! Every active shard contributes [`VNODES`] points to the ring, each the
//! FNV-1a hash of `"{addr}#{v}"`. A key routes to the shard owning the
//! first point at or clockwise-after the key's own hash. Because a shard's
//! points depend only on its address, deactivating one shard removes only
//! that shard's points: every key whose successor point belonged to a
//! surviving shard keeps its assignment, which is exactly the property that
//! makes shard draining cheap — only the drained shard's tenants move.

use tsn_service::fnv1a64;

/// Ring points contributed per shard. More points smooth the load split at
/// the cost of a longer (still tiny) sorted array; 64 keeps the worst
/// shard within a few percent of fair share for realistic fleet sizes.
pub const VNODES: usize = 64;

/// A sorted list of `(point, shard)` pairs — the ring, flattened.
#[derive(Debug, Clone, Default)]
pub struct Ring {
    points: Vec<(u64, usize)>,
}

/// Finalizing mixer (splitmix64's) applied on top of FNV-1a. FNV of
/// near-identical strings — shard addresses differing in one digit,
/// `tenant-17` vs `tenant-18` — differs mostly in the low bits, which
/// clusters raw hashes so badly that one shard can own almost no arc of
/// the ring. The mixer avalanches every input bit across the word.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

impl Ring {
    /// Builds the ring from the fleet's addresses, skipping inactive
    /// (drained) shards. `addrs` and `active` run in parallel; the index
    /// into them is the shard number carried on each point.
    pub fn build(addrs: &[String], active: &[bool]) -> Ring {
        let mut points = Vec::with_capacity(addrs.len() * VNODES);
        for (shard, addr) in addrs.iter().enumerate() {
            if !active.get(shard).copied().unwrap_or(false) {
                continue;
            }
            for v in 0..VNODES {
                points.push((mix(fnv1a64(format!("{addr}#{v}").as_bytes())), shard));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// The shard owning `hash`: the first ring point at or after the
    /// mixed hash, wrapping to the lowest point. `None` only when the
    /// ring is empty (every shard drained), which
    /// [`Router`](crate::Router) forbids.
    pub fn lookup(&self, hash: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = mix(hash);
        let i = self.points.partition_point(|(p, _)| *p < hash);
        let (_, shard) = self.points[if i == self.points.len() { 0 } else { i }];
        Some(shard)
    }

    /// The shard a tenant name routes to.
    pub fn shard_for_tenant(&self, tenant: &str) -> Option<usize> {
        self.lookup(fnv1a64(tenant.as_bytes()))
    }

    /// True when no shard contributes points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn ring_is_deterministic_and_roughly_balanced() {
        let fleet = addrs(4);
        let active = vec![true; 4];
        let a = Ring::build(&fleet, &active);
        let b = Ring::build(&fleet, &active);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            let tenant = format!("tenant-{i}");
            let shard = a.shard_for_tenant(&tenant).expect("non-empty ring");
            assert_eq!(
                b.shard_for_tenant(&tenant),
                Some(shard),
                "same fleet must build the same ring"
            );
            counts[shard] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                *count >= 50,
                "shard {shard} got {count}/1000 tenants — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn deactivating_a_shard_only_moves_its_own_tenants() {
        let fleet = addrs(4);
        let full = Ring::build(&fleet, &[true; 4]);
        let drained = Ring::build(&fleet, &[true, true, false, true]);
        let mut moved = 0usize;
        for i in 0..1000 {
            let tenant = format!("tenant-{i}");
            let before = full.shard_for_tenant(&tenant).expect("full ring");
            let after = drained.shard_for_tenant(&tenant).expect("drained ring");
            if before == 2 {
                assert_ne!(
                    after, 2,
                    "tenant {tenant} still routes to the drained shard"
                );
                moved += 1;
            } else {
                assert_eq!(
                    before, after,
                    "tenant {tenant} moved although its shard survived"
                );
            }
        }
        assert!(moved > 0, "no tenant ever hashed to shard 2");
    }

    #[test]
    fn empty_ring_has_no_owner() {
        let fleet = addrs(2);
        let ring = Ring::build(&fleet, &[false, false]);
        assert!(ring.is_empty());
        assert_eq!(ring.lookup(42), None);
    }
}
