//! `tsn-routerd` — the sharding front-end daemon.
//!
//! Binds a TCP listener and routes the newline-delimited JSON protocol of
//! `tsn_service` across a fleet of `tsn-serviced` shards until a
//! `shutdown` request arrives (which it broadcasts to the fleet), then
//! exits 0.
//!
//! ```text
//! tsn-routerd --shard HOST:PORT [--shard HOST:PORT ...]
//!             [--addr HOST] [--port N] [--port-file PATH]
//!             [--log-out PATH] [--log-level LEVEL]
//! ```
//!
//! `--shard` is given once per daemon in the fleet; the order defines the
//! shard numbers reported by `directory` and accepted by `drain_shard`.
//! `--port 0` (the default) picks an ephemeral port; the router prints
//! `listening on HOST:PORT` to stderr and, with `--port-file`, writes
//! `HOST:PORT` to the given path so scripts can find it. `--log-out` and
//! `--log-level` mirror `tsn-serviced`: structured JSONL diagnostics,
//! never a change to any response payload.

use std::net::TcpListener;
use std::process::ExitCode;

use tsn_router::{serve, Router, RouterConfig};

struct Options {
    addr: String,
    port: u16,
    port_file: Option<String>,
    log_out: Option<String>,
    log_level: Option<tsn_telemetry::log::Level>,
    config: RouterConfig,
}

fn parse_options() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let shards: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--shard")
        .map(|(i, _)| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .ok_or_else(|| "--shard expects a HOST:PORT address".to_string())
        })
        .collect::<Result<_, _>>()?;
    if shards.is_empty() {
        return Err("at least one --shard HOST:PORT is required".to_string());
    }
    Ok(Options {
        addr: value_of("--addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1".into()),
        port: match value_of("--port") {
            Some(v) => v
                .parse::<u16>()
                .map_err(|_| format!("--port expects a port number, got {v:?}"))?,
            None => 0,
        },
        port_file: value_of("--port-file").cloned(),
        log_out: value_of("--log-out").cloned(),
        log_level: value_of("--log-level")
            .map(|v| {
                tsn_telemetry::log::Level::parse(v)
                    .ok_or_else(|| format!("--log-level expects debug|info|warn|error, got {v:?}"))
            })
            .transpose()?,
        config: RouterConfig { shards },
    })
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("tsn-routerd: {message}");
            return ExitCode::FAILURE;
        }
    };
    let router = match Router::new(options.config) {
        Ok(router) => router,
        Err(message) => {
            eprintln!("tsn-routerd: {message}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind((options.addr.as_str(), options.port)) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!(
                "tsn-routerd: cannot bind {}:{}: {e}",
                options.addr, options.port
            );
            return ExitCode::FAILURE;
        }
    };
    let addr = match listener.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("tsn-routerd: no local address: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("listening on {addr}");
    if let Some(path) = &options.port_file {
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            eprintln!("tsn-routerd: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(level) = options.log_level {
        tsn_telemetry::log::logger().set_level(level);
    }
    if let Some(path) = &options.log_out {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(file) => tsn_telemetry::log::logger().set_sink(Some(Box::new(file))),
            Err(e) => {
                eprintln!("tsn-routerd: cannot open log file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match serve(&router, listener) {
        Ok(()) => {
            tsn_telemetry::log::logger().flush();
            eprintln!(
                "clean shutdown: {} tenants routed, {} migrations",
                router.tenant_count(),
                router.migrations()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tsn-routerd: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
