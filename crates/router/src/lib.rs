//! `tsn_router` — a sharded service fabric for `tsn-serviced` fleets.
//!
//! The router is a front-end that speaks the exact newline-delimited JSON
//! protocol of [`tsn_service`] and consistent-hashes tenants across N
//! daemon shards. Clients connect to one address and cannot tell a fleet
//! from a single daemon: tenant-keyed requests are forwarded **verbatim**
//! to the tenant's shard, keyless requests (`ping`, `synthesize`) route
//! by the hash of the request body so identical problems keep hitting the
//! same shard's content-addressed result cache, and admin requests
//! (`stats`, `metrics`, `health`) fan out and aggregate across the fleet.
//!
//! A routed request and its response look exactly like the single-daemon
//! protocol:
//!
//! ```text
//! → {"id":1,"request":{"type":"open_tenant","tenant":"plant-7","problem":{...}}}
//! ← {"id":1,"cached":false,"elapsed_us":8123,"ok":{"type":"tenant_open","tenant":"plant-7",...}}
//! ```
//!
//! Two request types exist only at the router:
//!
//! ```text
//! → {"id":2,"request":{"type":"directory"}}
//! ← {"id":2,"cached":false,"elapsed_us":310,"ok":{"type":"directory","tenants":12,
//!      "migrations":0,"shards":[{"shard":0,"addr":"127.0.0.1:4521","active":true,
//!      "tenants":7,"healthy":true,"shard_id":0,"sessions":5,"uptime_us":993211},...]}}
//!
//! → {"id":3,"request":{"type":"drain_shard","shard":0}}
//! ← {"id":3,"cached":false,"elapsed_us":41210,"ok":{"type":"shard_drained","shard":0,
//!      "addr":"127.0.0.1:4521","migrated":7}}
//! ```
//!
//! `drain_shard` removes the shard from the hash ring and moves every
//! tenant homed there to its new consistent-hash home with a
//! `migrate_out`/`migrate_in` pair. The serialized warm solver session
//! travels inside the snapshot, so every migrated tenant resumes **warm**
//! on its new shard — the next event pays an incremental solve, not a
//! cold one (`testkit` proves the responses stay byte-identical across a
//! mid-trace drain). `shutdown` through the router broadcasts to the
//! whole fleet before the router itself exits.
//!
//! The binary is `tsn-routerd`:
//!
//! ```text
//! tsn-routerd --shard 127.0.0.1:4521 --shard 127.0.0.1:4522 \
//!             [--addr HOST] [--port N] [--port-file PATH]
//!             [--log-out PATH] [--log-level LEVEL]
//! ```

mod ring;
mod server;

pub use ring::{Ring, VNODES};
pub use server::{serve, Router, RouterConfig};
