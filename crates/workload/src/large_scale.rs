//! Large-scale workload generation: hundreds to thousands of time-triggered
//! control streams on 32–128-switch fabrics.
//!
//! These instances are far beyond the paper's figures (tens of loops on 15
//! switches); they exist to exercise the partitioned parallel synthesis of
//! `tsn_scale`, following the scale regime of "Just a Second — Scheduling
//! Thousands of Time-Triggered Streams in Large-Scale Networks"
//! (arXiv:2306.07710). Everything is deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tsn_net::{builders, LinkSpec, NodeId, NodeKind, Time, Topology};
use tsn_synthesis::{SynthesisError, SynthesisProblem};

/// Switch-fabric family of a large-scale instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LargeTopology {
    /// A ring of switches (long routes, two route families per pair).
    Ring,
    /// A 4-row switch mesh (moderate path diversity).
    Grid,
    /// A `pods`-ary fat-tree (high path diversity, short routes) — the shape
    /// the partitioned solver scales best on.
    FatTree,
}

impl LargeTopology {
    /// All families, in a fixed order.
    pub const ALL: [LargeTopology; 3] = [
        LargeTopology::Ring,
        LargeTopology::Grid,
        LargeTopology::FatTree,
    ];
}

/// Parameters of one large-scale instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LargeScaleScenario {
    /// Switch-fabric family.
    pub topology: LargeTopology,
    /// Approximate number of switches (32–128 is the intended range; the
    /// fat-tree rounds to the nearest valid pod count).
    pub switches: usize,
    /// Number of control streams (sensor → controller loops). Each stream
    /// gets its own sensor and controller end station.
    pub streams: usize,
    /// Random seed identifying the instance.
    pub seed: u64,
    /// Fraction of streams running at 20 ms instead of the base 40 ms
    /// period, in percent (0–100). Higher values add message instances
    /// without adding streams.
    pub fast_stream_percent: u8,
}

impl Default for LargeScaleScenario {
    fn default() -> Self {
        LargeScaleScenario {
            topology: LargeTopology::FatTree,
            switches: 80,
            streams: 500,
            seed: 0,
            fast_stream_percent: 12,
        }
    }
}

/// The hyper-period of every large-scale instance.
const HYPERPERIOD_MS: i64 = 40;

/// Builds the switch fabric and the attachment points for end stations.
fn build_fabric(scenario: &LargeScaleScenario, spec: LinkSpec) -> (Topology, Vec<NodeId>) {
    match scenario.topology {
        LargeTopology::Ring => builders::switch_ring(scenario.switches.max(3), spec),
        LargeTopology::Grid => {
            let cols = scenario.switches.div_ceil(4).max(2);
            builders::switch_grid(4, cols, spec)
        }
        LargeTopology::FatTree => {
            let pods = builders::fat_tree_pods_for(scenario.switches);
            let (topo, layers) = builders::fat_tree(pods, spec);
            // End stations may only attach to the edge layer.
            (topo, layers.edge)
        }
    }
}

/// Builds one large-scale synthesis problem: the requested fabric with one
/// sensor and one controller end station per stream, attached to
/// deterministic-random switches (edge switches for the fat-tree), and
/// per-stream synthetic stability bounds lenient enough that instances stay
/// schedulable at scale while still rejecting high-jitter schedules.
///
/// The backbone runs at gigabit speed; end-station access links at fast
/// Ethernet — the mixed-speed regime of modern TSN deployments.
///
/// # Errors
///
/// Propagates problem-construction errors (which would indicate a generator
/// bug).
pub fn large_scale_problem(
    scenario: &LargeScaleScenario,
) -> Result<SynthesisProblem, SynthesisError> {
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0xA5C3_1E5C_A1E5_CA1E);
    let backbone = LinkSpec::gigabit_ethernet();
    let access = LinkSpec::fast_ethernet();
    let (mut topology, attach) = build_fabric(scenario, backbone);

    let mut problem_apps = Vec::with_capacity(scenario.streams);
    for i in 0..scenario.streams {
        let sensor = topology.add_node(format!("S{i}"), NodeKind::Sensor);
        let sw = attach[rng.gen_range(0..attach.len())];
        topology
            .connect(sensor, sw, access)
            .expect("fresh end station has no prior link");
        let controller = topology.add_node(format!("C{i}"), NodeKind::Controller);
        let sw = attach[rng.gen_range(0..attach.len())];
        topology
            .connect(controller, sw, access)
            .expect("fresh end station has no prior link");
        let fast = rng.gen_range(0..100u8) < scenario.fast_stream_percent.min(100);
        let period = Time::from_millis(if fast { 20 } else { HYPERPERIOD_MS });
        // Lenient single-segment bound: alpha in [1, 2], beta at 80–160 % of
        // the period, so almost every stream is schedulable but sloppy
        // high-jitter placements still fail.
        let alpha = rng.gen_range(1.0..2.0);
        let beta = period.as_secs_f64() * rng.gen_range(0.8..1.6);
        problem_apps.push((sensor, controller, period, alpha, beta));
    }

    let mut problem = SynthesisProblem::new(topology, Time::from_micros(5));
    for (i, (sensor, controller, period, alpha, beta)) in problem_apps.into_iter().enumerate() {
        problem.add_application(
            format!("stream{i}"),
            sensor,
            controller,
            period,
            1500,
            tsn_control::PiecewiseLinearBound::single_segment(alpha, beta),
        )?;
    }
    debug_assert_eq!(problem.hyperperiod(), Time::from_millis(HYPERPERIOD_MS));
    Ok(problem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let scenario = LargeScaleScenario {
            streams: 50,
            switches: 32,
            topology: LargeTopology::Ring,
            ..LargeScaleScenario::default()
        };
        let a = large_scale_problem(&scenario).unwrap();
        let b = large_scale_problem(&scenario).unwrap();
        assert_eq!(a.message_count(), b.message_count());
        assert_eq!(a.topology().link_count(), b.topology().link_count());
        assert_eq!(
            format!("{:?}", a.applications()),
            format!("{:?}", b.applications())
        );
        let c = large_scale_problem(&LargeScaleScenario {
            seed: 1,
            ..scenario
        })
        .unwrap();
        assert_ne!(
            format!("{:?}", a.applications()),
            format!("{:?}", c.applications())
        );
    }

    #[test]
    fn every_family_builds_at_target_sizes() {
        for &topology in &LargeTopology::ALL {
            let scenario = LargeScaleScenario {
                topology,
                switches: 32,
                streams: 64,
                seed: 2,
                fast_stream_percent: 25,
            };
            let problem = large_scale_problem(&scenario).unwrap();
            let switches = problem.topology().switches().len();
            // Ring and grid hit the target (up to grid rounding); the
            // fat-tree snaps to the closest valid pod configuration, which
            // for a 32-switch target is the 4-pod / 20-switch fabric.
            assert!(
                (20..=48).contains(&switches),
                "{topology:?}: {switches} switches"
            );
            assert_eq!(problem.applications().len(), 64);
            // 64 + 2*64 nodes.
            assert_eq!(problem.topology().node_count(), switches + 128);
            assert!(problem.message_count() >= 64);
            assert!(problem.message_count() <= 128);
            problem.validate().unwrap();
        }
    }

    #[test]
    fn fat_tree_streams_attach_to_edge_switches_only() {
        let scenario = LargeScaleScenario {
            streams: 40,
            ..LargeScaleScenario::default()
        };
        let problem = large_scale_problem(&scenario).unwrap();
        let topo = problem.topology();
        for app in problem.applications() {
            for node in [app.sensor, app.controller] {
                let links = topo.out_links(node);
                assert_eq!(links.len(), 1, "end stations have one port");
                let peer = topo.link(links[0]).target();
                assert!(
                    topo.node(peer).name().starts_with("EDGE"),
                    "end station attached to {}",
                    topo.node(peer).name()
                );
            }
        }
    }

    #[test]
    fn message_count_tracks_fast_stream_share() {
        let base = LargeScaleScenario {
            streams: 200,
            fast_stream_percent: 0,
            ..LargeScaleScenario::default()
        };
        let none = large_scale_problem(&base).unwrap();
        assert_eq!(none.message_count(), 200);
        let half = large_scale_problem(&LargeScaleScenario {
            fast_stream_percent: 50,
            ..base
        })
        .unwrap();
        // Every fast stream doubles its instance count.
        assert!(half.message_count() > 260 && half.message_count() < 340);
    }
}
