//! Workload generators for the experimental evaluation: random control
//! applications over random topologies (the paper's Figures 4–7), the
//! reconstructed automotive case study (Table I), seeded dynamic event
//! traces for the online admission engine, large-scale instances
//! (hundreds to thousands of streams on 32–128-switch fabrics) for the
//! partitioned parallel synthesis of `tsn_scale`, and multi-tenant request
//! traces for the synthesis daemon of `tsn_service`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod appgen;
mod automotive;
mod dynamic;
mod large_scale;
mod scenarios;
mod service_trace;

pub use appgen::{synthetic_bound, AppSpec, PlantKind};
pub use automotive::{automotive_case_study, AutomotiveCaseStudy, TABLE1_APPS};
pub use dynamic::{
    burst_windows, correlated_failure_trace, dynamic_network, event_trace,
    CorrelatedFailureScenario, DynamicScenario, DynamicTopology,
};
pub use large_scale::{large_scale_problem, LargeScaleScenario, LargeTopology};
pub use scenarios::{network_size_problem, scalability_problem, ScalabilityScenario};
pub use service_trace::{pool_problem, service_trace, ServiceScenario, TenantTrace};
