//! Workload generators for the experimental evaluation: random control
//! applications over random topologies (the paper's Figures 4–7) and the
//! reconstructed automotive case study (Table I).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod appgen;
mod automotive;
mod scenarios;

pub use appgen::{synthetic_bound, AppSpec, PlantKind};
pub use automotive::{automotive_case_study, AutomotiveCaseStudy, TABLE1_APPS};
pub use scenarios::{network_size_problem, scalability_problem, ScalabilityScenario};
