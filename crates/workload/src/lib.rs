//! Workload generators for the experimental evaluation: random control
//! applications over random topologies (the paper's Figures 4–7), the
//! reconstructed automotive case study (Table I), and seeded dynamic event
//! traces for the online admission engine.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod appgen;
mod automotive;
mod dynamic;
mod scenarios;

pub use appgen::{synthetic_bound, AppSpec, PlantKind};
pub use automotive::{automotive_case_study, AutomotiveCaseStudy, TABLE1_APPS};
pub use dynamic::{dynamic_network, event_trace, DynamicScenario, DynamicTopology};
pub use scenarios::{network_size_problem, scalability_problem, ScalabilityScenario};
