//! Scenario generators for the scalability experiments (Figures 4–7).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tsn_net::{builders, LinkSpec, Time};
use tsn_synthesis::{SynthesisError, SynthesisProblem};

use crate::AppSpec;

/// Parameters of one scalability problem instance (Figures 4–6): 10 control
/// applications on a 35-node network (10 sensors, 10 controllers, 15
/// switches), with the number of messages per hyper-period as the varied
/// quantity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScalabilityScenario {
    /// Target number of messages inside one hyper-period (10–100 in the
    /// paper).
    pub messages: usize,
    /// Number of control applications (10 in the paper).
    pub applications: usize,
    /// Number of Ethernet switches (15 in the paper).
    pub switches: usize,
    /// Random seed identifying the instance.
    pub seed: u64,
}

impl Default for ScalabilityScenario {
    fn default() -> Self {
        ScalabilityScenario {
            messages: 40,
            applications: 10,
            switches: 15,
            seed: 0,
        }
    }
}

/// The hyper-period used by the scalability scenarios.
const HYPERPERIOD_MS: i64 = 40;

/// Chooses per-application periods (divisors of the 40 ms hyper-period) so
/// that the total message count matches `target` as closely as possible.
fn choose_periods(applications: usize, target: usize) -> Vec<Time> {
    // Messages per application for each allowed period.
    let options: [(i64, usize); 6] = [(40, 1), (20, 2), (10, 4), (5, 8), (4, 10), (2, 20)];
    // `counts[app]` indexes into `options`; every application starts at 1
    // message (40 ms period). The loop repeatedly upgrades the application
    // with the slowest rate; this spreads the load evenly and overshoots the
    // target by at most one upgrade step. Application 0 always keeps the
    // 40 ms period so the hyper-period stays pinned at 40 ms regardless of
    // the target.
    let mut counts = vec![0usize; applications];
    let mut total = applications;
    while total < target {
        let candidate = counts
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &opt)| opt + 1 < options.len())
            .min_by_key(|&(i, &opt)| (opt, i))
            .map(|(i, _)| i);
        let Some(app) = candidate else {
            break; // every application is already at the fastest rate
        };
        let gain = options[counts[app] + 1].1 - options[counts[app]].1;
        counts[app] += 1;
        total += gain;
    }
    counts
        .into_iter()
        .map(|opt| Time::from_millis(options[opt].0))
        .collect()
}

/// Builds one random scalability problem (the instances behind Figures 4–6):
/// an Erdős–Rényi switch fabric with sensors/controllers attached and
/// randomly drawn control applications whose periods are chosen to hit the
/// requested message count.
///
/// # Errors
///
/// Propagates problem-construction errors (which would indicate a generator
/// bug).
pub fn scalability_problem(
    scenario: ScalabilityScenario,
) -> Result<SynthesisProblem, SynthesisError> {
    let mut rng = StdRng::seed_from_u64(scenario.seed.wrapping_mul(0x9E3779B97F4A7C15));
    let spec = LinkSpec::fast_ethernet();
    let (topology, switches) =
        builders::erdos_renyi_switches(scenario.switches.max(2), 0.25, spec, &mut rng);
    let network =
        builders::attach_end_stations(topology, &switches, scenario.applications, spec, &mut rng);
    let periods = choose_periods(scenario.applications, scenario.messages);
    let mut problem = SynthesisProblem::new(network.topology, Time::from_micros(5));
    for (i, period) in periods.into_iter().enumerate() {
        let app = AppSpec::random_synthetic(i, period, &mut rng);
        problem.add_application(
            app.name,
            network.sensors[i],
            network.controllers[i],
            app.period,
            app.frame_bytes,
            app.stability,
        )?;
    }
    debug_assert_eq!(problem.hyperperiod(), Time::from_millis(HYPERPERIOD_MS));
    Ok(problem)
}

/// Builds one instance of the network-size experiment (Figure 7): 10 control
/// applications generating 45 messages per hyper-period, on an Erdős–Rényi
/// topology with the given number of switches.
///
/// # Errors
///
/// Propagates problem-construction errors.
pub fn network_size_problem(
    switches: usize,
    seed: u64,
) -> Result<SynthesisProblem, SynthesisError> {
    scalability_problem(ScalabilityScenario {
        messages: 45,
        applications: 10,
        switches,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periods_hit_the_message_target() {
        for target in [10, 20, 45, 60, 100] {
            let periods = choose_periods(10, target);
            assert_eq!(periods.len(), 10);
            let hyper = Time::from_millis(HYPERPERIOD_MS);
            let total: i64 = periods.iter().map(|&p| hyper / p).sum();
            let diff = (total - target as i64).abs();
            assert!(
                diff <= 9,
                "target {target} produced {total} messages (diff {diff})"
            );
            assert!(total >= target as i64 || total == 100);
        }
    }

    #[test]
    fn scalability_problem_matches_paper_shape() {
        let problem = scalability_problem(ScalabilityScenario {
            messages: 30,
            applications: 10,
            switches: 15,
            seed: 3,
        })
        .unwrap();
        // 35 nodes: 15 switches + 10 sensors + 10 controllers.
        assert_eq!(problem.topology().node_count(), 35);
        assert_eq!(problem.applications().len(), 10);
        assert!(problem.message_count() >= 30);
        assert!(problem.message_count() <= 40);
        problem.validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = scalability_problem(ScalabilityScenario::default()).unwrap();
        let b = scalability_problem(ScalabilityScenario::default()).unwrap();
        assert_eq!(a.message_count(), b.message_count());
        assert_eq!(a.topology().link_count(), b.topology().link_count());
        let c = scalability_problem(ScalabilityScenario {
            seed: 99,
            ..ScalabilityScenario::default()
        })
        .unwrap();
        // Different seed: almost surely a different topology.
        assert!(
            a.topology().link_count() != c.topology().link_count()
                || a.message_count() != c.message_count()
                || format!("{:?}", a.applications()) != format!("{:?}", c.applications())
        );
    }

    #[test]
    fn network_size_instances_have_45_messages() {
        for switches in [10, 25, 45] {
            let p = network_size_problem(switches, 1).unwrap();
            assert_eq!(p.topology().switches().len(), switches);
            let count = p.message_count();
            assert!((45..=54).contains(&count), "got {count} messages");
        }
    }
}
