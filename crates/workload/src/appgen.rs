//! Random control-application generation.
//!
//! The paper's experiments "randomly choose control applications from a
//! database with inverted pendulums, ball and beam processes, DC servos, and
//! harmonic oscillators". This module reproduces that database and derives a
//! stability bound for every generated application — either directly from the
//! jitter-margin analysis of [`tsn_control`], or as a fast synthetic bound
//! with the same structure (a single `L + alpha J <= beta` segment) whose
//! parameters are drawn from the ranges observed in the paper's Table I.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tsn_control::{CurveOptions, PiecewiseLinearBound, Plant, StabilityCurve};
use tsn_net::Time;

/// The benchmark plant a control application regulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlantKind {
    /// DC servo `1000 / (s^2 + s)`.
    DcServo,
    /// Linearized inverted pendulum (open-loop unstable).
    InvertedPendulum,
    /// Ball and beam (double integrator).
    BallAndBeam,
    /// Harmonic oscillator.
    HarmonicOscillator,
}

impl PlantKind {
    /// All benchmark plants, in a fixed order.
    pub const ALL: [PlantKind; 4] = [
        PlantKind::DcServo,
        PlantKind::InvertedPendulum,
        PlantKind::BallAndBeam,
        PlantKind::HarmonicOscillator,
    ];

    /// The state-space model of this plant.
    pub fn plant(self) -> Plant {
        match self {
            PlantKind::DcServo => Plant::dc_servo(),
            PlantKind::InvertedPendulum => Plant::inverted_pendulum(),
            PlantKind::BallAndBeam => Plant::ball_and_beam(),
            PlantKind::HarmonicOscillator => Plant::harmonic_oscillator(),
        }
    }
}

/// The specification of one generated control application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppSpec {
    /// Name of the application.
    pub name: String,
    /// The plant it controls.
    pub plant: PlantKind,
    /// Sampling period.
    pub period: Time,
    /// Frame size in bytes.
    pub frame_bytes: u32,
    /// The stability bound used by the synthesizer.
    pub stability: PiecewiseLinearBound,
}

impl AppSpec {
    /// Generates a random application with a *synthetic* stability bound
    /// (fast, used for the large scalability sweeps of Figures 4–7).
    pub fn random_synthetic<R: Rng + ?Sized>(index: usize, period: Time, rng: &mut R) -> Self {
        let plant = PlantKind::ALL[rng.gen_range(0..PlantKind::ALL.len())];
        AppSpec {
            name: format!("app{index}-{plant:?}"),
            plant,
            period,
            frame_bytes: 1500,
            stability: synthetic_bound(period, rng),
        }
    }

    /// Generates a random application whose stability bound is computed from
    /// the plant's jitter-margin stability curve (slower, but fully grounded
    /// in the control analysis).
    ///
    /// Falls back to a synthetic bound if the curve cannot be computed for
    /// the drawn plant/period combination (e.g. an inverted pendulum sampled
    /// too slowly).
    pub fn random_analyzed<R: Rng + ?Sized>(index: usize, period: Time, rng: &mut R) -> Self {
        let plant = PlantKind::ALL[rng.gen_range(0..PlantKind::ALL.len())];
        let stability = StabilityCurve::compute(
            &plant.plant(),
            period.as_secs_f64(),
            CurveOptions::default(),
        )
        .and_then(|curve| PiecewiseLinearBound::from_curve(&curve, 3))
        .unwrap_or_else(|_| synthetic_bound(period, rng));
        AppSpec {
            name: format!("app{index}-{plant:?}"),
            plant,
            period,
            frame_bytes: 1500,
            stability,
        }
    }
}

/// Draws a synthetic single-segment stability bound `L + alpha J <= beta`
/// for an application of the given period.
///
/// The parameter ranges follow the paper's Table I: `alpha` between 1 and
/// 2.5, and `beta` between 60% and 160% of the period, so that some
/// applications can only be stabilized with small jitter while others are
/// lenient.
pub fn synthetic_bound<R: Rng + ?Sized>(period: Time, rng: &mut R) -> PiecewiseLinearBound {
    let alpha = rng.gen_range(1.0..2.5);
    let beta = period.as_secs_f64() * rng.gen_range(0.6..1.6);
    PiecewiseLinearBound::single_segment(alpha, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthetic_bounds_are_valid_and_period_scaled() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let period = Time::from_millis(20);
            let bound = synthetic_bound(period, &mut rng);
            assert_eq!(bound.segments().len(), 1);
            let s = bound.segments()[0];
            assert!(s.alpha >= 1.0 && s.alpha <= 2.5);
            assert!(s.beta >= 0.012 && s.beta <= 0.032);
            // Zero latency, zero jitter is always stable.
            assert!(bound.is_stable(0.0, 0.0));
        }
    }

    #[test]
    fn random_synthetic_apps_cover_the_database() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..40 {
            let spec = AppSpec::random_synthetic(i, Time::from_millis(40), &mut rng);
            seen.insert(spec.plant);
            assert_eq!(spec.period, Time::from_millis(40));
            assert_eq!(spec.frame_bytes, 1500);
        }
        assert_eq!(seen.len(), 4, "all four benchmark plants must appear");
    }

    #[test]
    fn analyzed_app_produces_usable_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = AppSpec::random_analyzed(0, Time::from_millis(10), &mut rng);
        // Whatever the plant, the bound must accept the zero-delay point and
        // have a positive latency range.
        assert!(spec.stability.is_stable(0.0, 0.0));
        assert!(spec.stability.max_latency() > 0.0);
    }
}
