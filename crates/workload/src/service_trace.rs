//! Seeded multi-tenant request traces for the synthesis daemon
//! (`tsn_service`).
//!
//! A [`ServiceScenario`] describes a fleet of tenant networks plus a mixed
//! request load: each tenant opens its session, streams a seeded dynamic
//! event trace (the [`dynamic`](crate::event_trace) generator), interleaves
//! one-shot `synthesize` requests drawn from a small shared problem pool
//! (so identical problems recur and exercise the daemon's result cache),
//! and finally queries its state. Generation is fully deterministic per
//! seed, so the same trace can drive the daemon over TCP, the in-process
//! differential in `testkit`, or the `fig_service` load generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsn_control::PiecewiseLinearBound;
use tsn_net::{builders, LinkSpec, Time};
use tsn_service::protocol::{Backend, Request, RequestBody};
use tsn_synthesis::SynthesisProblem;

use crate::{event_trace, DynamicScenario, DynamicTopology};

/// One service scenario: how many tenants, how much traffic each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceScenario {
    /// Number of tenant sessions.
    pub tenants: usize,
    /// Online events per tenant (admissions, removals, link churn).
    pub events_per_tenant: usize,
    /// A one-shot `synthesize` request is interleaved after every this many
    /// events (`0` disables one-shots).
    pub synthesize_every: usize,
    /// Size of the shared one-shot problem pool. Smaller pools repeat
    /// problems sooner — every repetition is a cache hit on the daemon.
    pub problem_pool: usize,
    /// Bursty arrivals: when greater than 1, consecutive events are grouped
    /// into `event_batch` requests of seeded sizes up to this bound (the
    /// daemon commits each with one joint batched solve). `0` or `1` keeps
    /// the one-event-per-request pattern.
    pub burst: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for ServiceScenario {
    fn default() -> Self {
        ServiceScenario {
            tenants: 4,
            events_per_tenant: 20,
            synthesize_every: 4,
            problem_pool: 3,
            burst: 1,
            seed: 0,
        }
    }
}

/// The request stream of one tenant, in submission order.
#[derive(Debug, Clone)]
pub struct TenantTrace {
    /// The tenant's name.
    pub tenant: String,
    /// Requests, ids unique across the whole scenario.
    pub requests: Vec<Request>,
}

impl TenantTrace {
    /// The number of requests in this trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The number of online events this trace delivers, counting every
    /// member of an `event_batch` (so the count is invariant under the
    /// `burst` grouping). Benchmarks report this as the stream count of a
    /// scenario rather than the request count, which burstiness deflates.
    pub fn event_count(&self) -> usize {
        self.requests
            .iter()
            .map(|r| match &r.body {
                RequestBody::Event { .. } => 1,
                RequestBody::EventBatch { events, .. } => events.len(),
                _ => 0,
            })
            .sum()
    }
}

/// One problem of the shared one-shot pool (deterministic per variant).
///
/// All variants live on the figure-1 network with two loops; the variant
/// picks the period mix, so distinct variants have distinct wire encodings
/// while every variant stays cheap to solve.
pub fn pool_problem(variant: usize) -> SynthesisProblem {
    let net = builders::figure1_example(LinkSpec::fast_ethernet());
    let mut problem = SynthesisProblem::new(net.topology, Time::from_micros(5));
    let periods: [(i64, i64); 3] = [(10, 20), (20, 40), (10, 40)];
    let (p0, p1) = periods[variant % periods.len()];
    let extra = (variant / periods.len()) as i64 % 2; // widen the pool past 3
    for (i, period) in [(0usize, p0), (1usize, p1)] {
        problem
            .add_application(
                format!("oneshot-{variant}-{i}"),
                net.sensors[i],
                net.controllers[i],
                Time::from_millis(period * (1 + extra)),
                1500,
                PiecewiseLinearBound::single_segment(2.0, 0.018),
            )
            .expect("pool problems are valid by construction");
    }
    problem
}

/// Generates the per-tenant request traces of a scenario.
pub fn service_trace(scenario: &ServiceScenario) -> Vec<TenantTrace> {
    let mut traces = Vec::with_capacity(scenario.tenants);
    for t in 0..scenario.tenants {
        let mut rng = StdRng::seed_from_u64(
            scenario
                .seed
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(t as u64),
        );
        let tenant = format!("tenant-{t}");
        // Alternate tenant fabrics so the fleet is heterogeneous.
        let dynamic = DynamicScenario {
            topology: if t % 2 == 0 {
                DynamicTopology::Figure1
            } else {
                DynamicTopology::Grid { switches: 4 }
            },
            slots: 3,
            events: scenario.events_per_tenant,
            load: 0.8,
            seed: scenario.seed.wrapping_add(1000 + t as u64),
        };
        let (network, events) = event_trace(&dynamic);

        let mut id = (t as i64) * 100_000;
        let mut next_id = || {
            id += 1;
            id
        };
        // Every generated request carries a trace id in the envelope
        // (disjoint from the id space), so a daemon flight recording of a
        // trace-driven load can be correlated request-by-request.
        let trace_of = |id: i64| Some(1_000_000_000 + id);
        let mut requests = Vec::new();
        let open_id = next_id();
        requests.push(Request {
            id: open_id,
            trace: trace_of(open_id),
            body: RequestBody::OpenTenant {
                tenant: tenant.clone(),
                topology: network.topology.clone(),
                forwarding_delay: Time::from_micros(5),
                config: None,
            },
        });
        let mut consumed = 0usize;
        while consumed < events.len() {
            // Bursty arrivals: a window of consecutive events becomes one
            // `event_batch` request (single-event windows stay ordinary
            // `event` requests — with `burst <= 1` the trace is exactly the
            // pre-burst pattern).
            let window = if scenario.burst > 1 {
                rng.gen_range(1..=scenario.burst)
                    .min(events.len() - consumed)
            } else {
                1
            };
            let body = if window == 1 {
                RequestBody::Event {
                    tenant: tenant.clone(),
                    event: events[consumed].clone(),
                }
            } else {
                RequestBody::EventBatch {
                    tenant: tenant.clone(),
                    events: events[consumed..consumed + window].to_vec(),
                }
            };
            let event_id = next_id();
            requests.push(Request {
                id: event_id,
                trace: trace_of(event_id),
                body,
            });
            if scenario.synthesize_every > 0 {
                for boundary in consumed + 1..=consumed + window {
                    if boundary % scenario.synthesize_every == 0 {
                        let variant = rng.gen_range(0..scenario.problem_pool.max(1));
                        let synth_id = next_id();
                        requests.push(Request {
                            id: synth_id,
                            trace: trace_of(synth_id),
                            body: RequestBody::Synthesize {
                                problem: pool_problem(variant),
                                config: None,
                                backend: Backend::Auto,
                            },
                        });
                    }
                }
            }
            consumed += window;
        }
        let state_id = next_id();
        requests.push(Request {
            id: state_id,
            trace: trace_of(state_id),
            body: RequestBody::TenantState {
                tenant: tenant.clone(),
            },
        });
        traces.push(TenantTrace { tenant, requests });
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_unique_per_tenant() {
        let scenario = ServiceScenario::default();
        let a = service_trace(&scenario);
        let b = service_trace(&scenario);
        assert_eq!(a.len(), 4);
        for (ta, tb) in a.iter().zip(b.iter()) {
            assert_eq!(ta.tenant, tb.tenant);
            assert_eq!(ta.len(), tb.len());
            for (ra, rb) in ta.requests.iter().zip(tb.requests.iter()) {
                assert_eq!(ra.to_line(), rb.to_line(), "trace must be reproducible");
            }
        }
        // Unique ids across the whole scenario.
        let mut ids: Vec<i64> = a
            .iter()
            .flat_map(|t| t.requests.iter().map(|r| r.id))
            .collect();
        let total = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total);
    }

    #[test]
    fn traces_mix_request_kinds_and_repeat_problems() {
        let scenario = ServiceScenario {
            tenants: 3,
            events_per_tenant: 16,
            synthesize_every: 2,
            problem_pool: 2,
            burst: 1,
            seed: 7,
        };
        let traces = service_trace(&scenario);
        let mut synthesize_lines = Vec::new();
        for trace in &traces {
            assert!(matches!(
                trace.requests.first().map(|r| &r.body),
                Some(RequestBody::OpenTenant { .. })
            ));
            assert!(matches!(
                trace.requests.last().map(|r| &r.body),
                Some(RequestBody::TenantState { .. })
            ));
            for request in &trace.requests {
                if let RequestBody::Synthesize { .. } = request.body {
                    synthesize_lines.push(request.body.to_json().to_string());
                }
            }
        }
        assert!(synthesize_lines.len() >= 12, "one-shots interleaved");
        let total = synthesize_lines.len();
        synthesize_lines.sort();
        synthesize_lines.dedup();
        assert!(
            synthesize_lines.len() < total,
            "a small problem pool must repeat identical one-shots (cache fodder)"
        );
        assert!(
            synthesize_lines.len() >= 2,
            "the pool still has more than one distinct problem"
        );
    }

    #[test]
    fn bursty_traces_group_events_into_non_trivial_batches() {
        let scenario = ServiceScenario {
            tenants: 2,
            events_per_tenant: 18,
            synthesize_every: 5,
            problem_pool: 2,
            burst: 4,
            seed: 11,
        };
        let traces = service_trace(&scenario);
        let again = service_trace(&scenario);
        let mut batched_events = 0usize;
        let mut single_events = 0usize;
        let mut largest = 0usize;
        for (trace, trace2) in traces.iter().zip(again.iter()) {
            for (r, r2) in trace.requests.iter().zip(trace2.requests.iter()) {
                assert_eq!(r.to_line(), r2.to_line(), "bursty traces reproducible");
                match &r.body {
                    RequestBody::EventBatch { events, .. } => {
                        assert!(events.len() >= 2, "trivial batches stay `event`s");
                        largest = largest.max(events.len());
                        batched_events += events.len();
                    }
                    RequestBody::Event { .. } => single_events += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(
            batched_events + single_events,
            2 * 18,
            "every generated event is delivered exactly once"
        );
        assert_eq!(
            traces.iter().map(TenantTrace::event_count).sum::<usize>(),
            2 * 18,
            "event_count sees through batching"
        );
        assert!(
            batched_events > single_events,
            "burst=4 must put most events into batches \
             ({batched_events} batched, {single_events} single)"
        );
        assert!(largest >= 3, "non-trivial batch sizes appear: {largest}");
        // burst == 1 produces no event_batch requests at all.
        let flat = service_trace(&ServiceScenario {
            burst: 1,
            ..scenario
        });
        assert!(flat.iter().all(|t| t
            .requests
            .iter()
            .all(|r| !matches!(r.body, RequestBody::EventBatch { .. }))));
    }

    #[test]
    fn pool_problems_are_distinct_per_variant_and_stable() {
        use tsn_synthesis::wire::problem_to_json;
        let a = problem_to_json(&pool_problem(0)).to_string();
        let b = problem_to_json(&pool_problem(1)).to_string();
        let a2 = problem_to_json(&pool_problem(0)).to_string();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }
}
