//! Dynamic-scenario generation: seeded event traces over the existing
//! topologies, for the online admission engine (`tsn_online`).
//!
//! A [`DynamicScenario`] describes a network plus a stochastic mix of
//! control loops joining and leaving and links failing and recovering. The
//! generator is fully deterministic per seed and never inspects engine
//! state: admission ids are predicted from the engine's documented contract
//! (every `AdmitApp` consumes one id, accepted or not), so the same trace
//! can be replayed against the engine, against a cold re-synthesis
//! differential, or across processes via `tsn_online::wire`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tsn_net::builders::{self, BuiltNetwork};
use tsn_net::{LinkId, LinkSpec, NodeKind, Time};
use tsn_online::{AppId, NetworkEvent};
use tsn_synthesis::ControlApplication;

use crate::synthetic_bound;

/// Which network a dynamic scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DynamicTopology {
    /// The paper's Figure-1 example network (8 switches, 3 loop slots).
    Figure1,
    /// A 2×(n/2) switch grid with `slots` sensor/controller pairs attached.
    Grid {
        /// Number of switches in the grid fabric.
        switches: usize,
    },
    /// A switch ring with `slots` sensor/controller pairs attached.
    Ring {
        /// Number of switches in the ring fabric.
        switches: usize,
    },
}

/// One dynamic scenario: a network plus a seeded event mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicScenario {
    /// The network shape.
    pub topology: DynamicTopology,
    /// Number of sensor/controller pairs (admission slots). Ignored for
    /// [`DynamicTopology::Figure1`], which always has 3.
    pub slots: usize,
    /// Number of events to generate.
    pub events: usize,
    /// Target fraction (0..=1) of slots kept occupied: higher loads bias
    /// the mix toward admissions, lower loads toward removals.
    pub load: f64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for DynamicScenario {
    fn default() -> Self {
        DynamicScenario {
            topology: DynamicTopology::Figure1,
            slots: 3,
            events: 40,
            load: 0.7,
            seed: 0,
        }
    }
}

/// Periods drawn for dynamic loops; all divide 40 ms so the hyper-period
/// stays bounded however the live set evolves.
const PERIODS_MS: [i64; 3] = [10, 20, 40];

/// Builds the network of a dynamic scenario (deterministic per scenario).
pub fn dynamic_network(scenario: &DynamicScenario) -> BuiltNetwork {
    let spec = LinkSpec::fast_ethernet();
    match scenario.topology {
        DynamicTopology::Figure1 => builders::figure1_example(spec),
        DynamicTopology::Grid { switches } => {
            let (topology, fabric) = builders::switch_grid(2, switches.div_ceil(2).max(1), spec);
            let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0xA11C_E5ED);
            builders::attach_end_stations(topology, &fabric, scenario.slots, spec, &mut rng)
        }
        DynamicTopology::Ring { switches } => {
            let (topology, fabric) = builders::switch_ring(switches.max(3), spec);
            let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0xA11C_E5ED);
            builders::attach_end_stations(topology, &fabric, scenario.slots, spec, &mut rng)
        }
    }
}

/// Generates the seeded event trace of a scenario over its network.
///
/// The mix contains admissions onto free slots, *doomed* admissions onto
/// already-occupied sensors (exercising the rejection path), removals of
/// previously admitted loops, and failures/recoveries of switch-to-switch
/// links (at most one physical link down at a time, so the fabric stays
/// connected on every topology this module builds).
pub fn event_trace(scenario: &DynamicScenario) -> (BuiltNetwork, Vec<NetworkEvent>) {
    let network = dynamic_network(scenario);
    let mut rng = StdRng::seed_from_u64(scenario.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let slots = network.application_slots();
    let target = ((slots as f64) * scenario.load.clamp(0.0, 1.0)).round() as usize;

    // One direction per switch-to-switch physical link is eligible to fail.
    let downable: Vec<LinkId> = network
        .topology
        .links()
        .filter(|l| {
            network.topology.node(l.source()).kind() == NodeKind::Switch
                && network.topology.node(l.target()).kind() == NodeKind::Switch
                && l.id().index() < l.reverse().index()
        })
        .map(|l| l.id())
        .collect();

    let mut events = Vec::with_capacity(scenario.events);
    let mut next_id = 0u64;
    // (predicted id, slot) of loops the generator believes are live.
    let mut occupied: Vec<(AppId, usize)> = Vec::new();
    let mut free: Vec<usize> = (0..slots).collect();
    let mut down: Option<LinkId> = None;

    let admit = |rng: &mut StdRng, slot: usize, next_id: &mut u64| -> NetworkEvent {
        let period = Time::from_millis(PERIODS_MS[rng.gen_range(0..PERIODS_MS.len())]);
        let app = ControlApplication {
            name: format!("dyn-{}", *next_id),
            sensor: network.sensors[slot],
            controller: network.controllers[slot],
            period,
            frame_bytes: 1500,
            stability: synthetic_bound(period, rng),
        };
        *next_id += 1;
        NetworkEvent::AdmitApp { app }
    };

    for _ in 0..scenario.events {
        let roll = rng.gen_range(0..100u32);
        let want_admit = occupied.len() < target || free.is_empty();
        let event = if roll < 15 && !occupied.is_empty() {
            // Doomed admission: the sensor is already in use.
            let &(_, slot) = &occupied[rng.gen_range(0..occupied.len())];
            // Rejection predicted, so no slot bookkeeping changes.
            admit(&mut rng, slot, &mut next_id)
        } else if roll < 25 && down.is_none() && !downable.is_empty() {
            let link = downable[rng.gen_range(0..downable.len())];
            down = Some(link);
            NetworkEvent::LinkDown { link }
        } else if roll < 35 && down.is_some() {
            let link = down.take().expect("checked");
            NetworkEvent::LinkUp { link }
        } else if (roll < 55 || !want_admit) && !occupied.is_empty() {
            let idx = rng.gen_range(0..occupied.len());
            let (id, slot) = occupied.remove(idx);
            free.push(slot);
            NetworkEvent::RemoveApp { app: id }
        } else if !free.is_empty() {
            let idx = rng.gen_range(0..free.len());
            let slot = free.remove(idx);
            let id = AppId(next_id);
            let e = admit(&mut rng, slot, &mut next_id);
            occupied.push((id, slot));
            e
        } else {
            // Every slot busy and nothing else applicable: remove someone.
            let (id, slot) = occupied.remove(rng.gen_range(0..occupied.len()));
            free.push(slot);
            NetworkEvent::RemoveApp { app: id }
        };
        events.push(event);
    }
    (network, events)
}

/// A correlated-failure scenario: a dying switch takes all of its fabric
/// links down **simultaneously**, followed by staggered recovery.
///
/// This is the workload the batched reconfiguration path of `tsn_online`
/// exists for: per-event processing reroutes (and possibly evicts) loops at
/// every intermediate failure state, while
/// [`process_batch`](../../tsn_online/struct.OnlineEngine.html#method.process_batch)
/// sees only the net effect of each window. The generated trace is a
/// sequence of *windows* (event batches): an admission prologue filling the
/// slots, then per burst one window with the victim switch's simultaneous
/// `LinkDown` set and — when `flap` is set — the immediate recovery of part
/// of that set in the *same* window (a flapping switch: the net failure is
/// smaller than the transient one), followed by staggered single-`LinkUp`
/// recovery windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedFailureScenario {
    /// The network shape.
    pub topology: DynamicTopology,
    /// Number of sensor/controller pairs attached to the fabric.
    pub slots: usize,
    /// Number of admissions in the prologue window (capped at `slots`).
    pub loops: usize,
    /// Number of switch-down bursts.
    pub bursts: usize,
    /// Whether part of each burst's link set recovers within the burst
    /// window itself (the flapping pattern whose net effect a batched
    /// solve exploits).
    pub flap: bool,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for CorrelatedFailureScenario {
    fn default() -> Self {
        CorrelatedFailureScenario {
            topology: DynamicTopology::Ring { switches: 6 },
            slots: 3,
            loops: 3,
            bursts: 1,
            flap: false,
            seed: 0,
        }
    }
}

/// Generates the batched windows of a correlated-failure scenario.
///
/// Victim switches are drawn (per seed) among fabric switches with **no**
/// end stations attached, so a dead switch never strands a sensor or
/// controller — the interesting question is rerouting, not reachability.
/// Every window is intended for one `process_batch` call; concatenating the
/// windows yields the equivalent sequential trace.
pub fn correlated_failure_trace(
    scenario: &CorrelatedFailureScenario,
) -> (BuiltNetwork, Vec<Vec<NetworkEvent>>) {
    let network = dynamic_network(&DynamicScenario {
        topology: scenario.topology,
        slots: scenario.slots,
        events: 0,
        load: 1.0,
        seed: scenario.seed,
    });
    let mut rng = StdRng::seed_from_u64(scenario.seed.wrapping_mul(0xD1B5_4A32_D192_ED03));

    // Fabric switches without attached end stations are eligible victims.
    let topology = &network.topology;
    let mut victims: Vec<_> = topology
        .nodes()
        .filter(|n| n.kind() == NodeKind::Switch)
        .map(|n| n.id())
        .filter(|&sw| {
            topology.links().all(|l| {
                (l.source() != sw && l.target() != sw)
                    || (topology.node(l.source()).kind() == NodeKind::Switch
                        && topology.node(l.target()).kind() == NodeKind::Switch)
            })
        })
        .collect();
    victims.sort();

    let mut windows = Vec::new();

    // Prologue: all admissions in one window.
    let loops = scenario.loops.min(network.application_slots());
    let mut admissions = Vec::with_capacity(loops);
    for (id, slot) in (0..loops).enumerate() {
        let period = Time::from_millis(PERIODS_MS[rng.gen_range(0..PERIODS_MS.len())]);
        admissions.push(NetworkEvent::AdmitApp {
            app: ControlApplication {
                name: format!("corr-{id}"),
                sensor: network.sensors[slot],
                controller: network.controllers[slot],
                period,
                frame_bytes: 1500,
                stability: synthetic_bound(period, &mut rng),
            },
        });
    }
    windows.push(admissions);

    for _ in 0..scenario.bursts {
        if victims.is_empty() {
            break;
        }
        let victim = victims[rng.gen_range(0..victims.len())];
        // One direction per physical fabric link of the victim.
        let burst_links: Vec<LinkId> = network
            .topology
            .links()
            .filter(|l| {
                (l.source() == victim || l.target() == victim)
                    && l.id().index() < l.reverse().index()
            })
            .map(|l| l.id())
            .collect();
        let mut burst: Vec<NetworkEvent> = burst_links
            .iter()
            .map(|&link| NetworkEvent::LinkDown { link })
            .collect();
        // A flapping switch: all links go down together, but part of the
        // set is back before the window closes — the net failure is
        // strictly smaller than the transient one.
        let flapped = if scenario.flap && burst_links.len() > 1 {
            let keep_down = 1 + rng.gen_range(0..burst_links.len().max(2) - 1);
            let recovered: Vec<LinkId> = burst_links[keep_down..].to_vec();
            burst.extend(recovered.iter().map(|&link| NetworkEvent::LinkUp { link }));
            burst_links[..keep_down].to_vec()
        } else {
            burst_links.clone()
        };
        windows.push(burst);
        // Staggered recovery: one window per still-failed link.
        for link in flapped {
            windows.push(vec![NetworkEvent::LinkUp { link }]);
        }
    }
    (network, windows)
}

/// Chops a flat event trace into seeded burst windows of 1..=`max_window`
/// events — the unit fed to `process_batch` by the batched-vs-sequential
/// differential (concatenating the windows restores the original trace).
pub fn burst_windows(
    events: Vec<NetworkEvent>,
    seed: u64,
    max_window: usize,
) -> Vec<Vec<NetworkEvent>> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
    let max = max_window.max(1);
    let mut windows = Vec::new();
    let mut events = events.into_iter().peekable();
    while events.peek().is_some() {
        let size = rng.gen_range(1..=max);
        let window: Vec<NetworkEvent> = events.by_ref().take(size).collect();
        windows.push(window);
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let scenario = DynamicScenario::default();
        let (_, a) = event_trace(&scenario);
        let (_, b) = event_trace(&scenario);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let (_, c) = event_trace(&DynamicScenario {
            seed: 1,
            ..scenario
        });
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn traces_mix_event_kinds() {
        let scenario = DynamicScenario {
            events: 120,
            ..DynamicScenario::default()
        };
        let (network, events) = event_trace(&scenario);
        assert_eq!(events.len(), 120);
        let mut admits = 0;
        let mut removes = 0;
        let mut downs = 0;
        let mut ups = 0;
        for e in &events {
            match e {
                NetworkEvent::AdmitApp { app } => {
                    admits += 1;
                    assert!(network.sensors.contains(&app.sensor));
                    assert_eq!(app.period.as_millis() % 10, 0);
                }
                NetworkEvent::RemoveApp { .. } => removes += 1,
                NetworkEvent::LinkDown { link } => {
                    downs += 1;
                    let l = network.topology.link(*link);
                    assert_eq!(network.topology.node(l.source()).kind(), NodeKind::Switch);
                    assert_eq!(network.topology.node(l.target()).kind(), NodeKind::Switch);
                }
                NetworkEvent::LinkUp { .. } => ups += 1,
            }
        }
        assert!(admits > 10, "admits: {admits}");
        assert!(removes > 5, "removes: {removes}");
        assert!(downs >= 1, "downs: {downs}");
        assert!(
            ups <= downs,
            "a link can only come back up after going down"
        );
    }

    #[test]
    fn correlated_bursts_down_whole_switches_and_recover() {
        let scenario = CorrelatedFailureScenario {
            topology: DynamicTopology::Ring { switches: 6 },
            slots: 3,
            loops: 3,
            bursts: 2,
            flap: false,
            seed: 4,
        };
        let (network, windows) = correlated_failure_trace(&scenario);
        let (_, again) = correlated_failure_trace(&scenario);
        assert_eq!(format!("{windows:?}"), format!("{again:?}"));
        assert!(matches!(
            windows[0].as_slice(),
            [NetworkEvent::AdmitApp { .. }, ..]
        ));
        assert_eq!(windows[0].len(), 3);
        // The first burst window downs at least two links simultaneously,
        // all incident to one switch.
        let burst = &windows[1];
        let downs: Vec<_> = burst
            .iter()
            .filter_map(|e| match e {
                NetworkEvent::LinkDown { link } => Some(*link),
                _ => None,
            })
            .collect();
        assert!(downs.len() >= 2, "a switch death downs several links");
        // Every downed link touches the victim switch: the intersection of
        // endpoint sets over all downed links is non-empty.
        let endpoints = |link: LinkId| {
            let l = network.topology.link(link);
            [l.source(), l.target()]
        };
        let victim = endpoints(downs[0])
            .into_iter()
            .find(|n| downs.iter().all(|&d| endpoints(d).contains(n)))
            .expect("one common victim switch");
        assert_eq!(network.topology.node(victim).kind(), NodeKind::Switch);
        // Recovery is staggered: each downed link comes back in its own
        // later window.
        let ups: usize = windows[2..]
            .iter()
            .flatten()
            .filter(|e| matches!(e, NetworkEvent::LinkUp { .. }))
            .count();
        assert!(ups >= downs.len(), "every downed link eventually recovers");
    }

    #[test]
    fn flapping_bursts_recover_part_of_the_set_in_window() {
        let scenario = CorrelatedFailureScenario {
            flap: true,
            seed: 2,
            ..CorrelatedFailureScenario::default()
        };
        let (_, windows) = correlated_failure_trace(&scenario);
        let burst = &windows[1];
        let downs = burst
            .iter()
            .filter(|e| matches!(e, NetworkEvent::LinkDown { .. }))
            .count();
        let in_window_ups = burst
            .iter()
            .filter(|e| matches!(e, NetworkEvent::LinkUp { .. }))
            .count();
        assert!(downs >= 2);
        assert!(
            in_window_ups >= 1 && in_window_ups < downs,
            "a flap recovers part (not all) of the burst inside the window: \
             {downs} downs, {in_window_ups} ups"
        );
    }

    #[test]
    fn burst_windows_partition_the_trace() {
        let (_, events) = event_trace(&DynamicScenario {
            events: 30,
            ..DynamicScenario::default()
        });
        let windows = burst_windows(events.clone(), 9, 4);
        let windows2 = burst_windows(events.clone(), 9, 4);
        assert_eq!(format!("{windows:?}"), format!("{windows2:?}"));
        assert!(windows.iter().all(|w| !w.is_empty() && w.len() <= 4));
        assert!(windows.iter().any(|w| w.len() >= 2), "non-trivial windows");
        let flat: Vec<NetworkEvent> = windows.into_iter().flatten().collect();
        assert_eq!(format!("{flat:?}"), format!("{events:?}"));
    }

    #[test]
    fn grid_and_ring_networks_have_requested_slots() {
        for topology in [
            DynamicTopology::Grid { switches: 6 },
            DynamicTopology::Ring { switches: 5 },
        ] {
            let scenario = DynamicScenario {
                topology,
                slots: 5,
                ..DynamicScenario::default()
            };
            let network = dynamic_network(&scenario);
            assert_eq!(network.application_slots(), 5);
            builders::validate_routability(&network).unwrap();
        }
    }
}
