//! Dynamic-scenario generation: seeded event traces over the existing
//! topologies, for the online admission engine (`tsn_online`).
//!
//! A [`DynamicScenario`] describes a network plus a stochastic mix of
//! control loops joining and leaving and links failing and recovering. The
//! generator is fully deterministic per seed and never inspects engine
//! state: admission ids are predicted from the engine's documented contract
//! (every `AdmitApp` consumes one id, accepted or not), so the same trace
//! can be replayed against the engine, against a cold re-synthesis
//! differential, or across processes via `tsn_online::wire`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tsn_net::builders::{self, BuiltNetwork};
use tsn_net::{LinkId, LinkSpec, NodeKind, Time};
use tsn_online::{AppId, NetworkEvent};
use tsn_synthesis::ControlApplication;

use crate::synthetic_bound;

/// Which network a dynamic scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DynamicTopology {
    /// The paper's Figure-1 example network (8 switches, 3 loop slots).
    Figure1,
    /// A 2×(n/2) switch grid with `slots` sensor/controller pairs attached.
    Grid {
        /// Number of switches in the grid fabric.
        switches: usize,
    },
    /// A switch ring with `slots` sensor/controller pairs attached.
    Ring {
        /// Number of switches in the ring fabric.
        switches: usize,
    },
}

/// One dynamic scenario: a network plus a seeded event mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicScenario {
    /// The network shape.
    pub topology: DynamicTopology,
    /// Number of sensor/controller pairs (admission slots). Ignored for
    /// [`DynamicTopology::Figure1`], which always has 3.
    pub slots: usize,
    /// Number of events to generate.
    pub events: usize,
    /// Target fraction (0..=1) of slots kept occupied: higher loads bias
    /// the mix toward admissions, lower loads toward removals.
    pub load: f64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for DynamicScenario {
    fn default() -> Self {
        DynamicScenario {
            topology: DynamicTopology::Figure1,
            slots: 3,
            events: 40,
            load: 0.7,
            seed: 0,
        }
    }
}

/// Periods drawn for dynamic loops; all divide 40 ms so the hyper-period
/// stays bounded however the live set evolves.
const PERIODS_MS: [i64; 3] = [10, 20, 40];

/// Builds the network of a dynamic scenario (deterministic per scenario).
pub fn dynamic_network(scenario: &DynamicScenario) -> BuiltNetwork {
    let spec = LinkSpec::fast_ethernet();
    match scenario.topology {
        DynamicTopology::Figure1 => builders::figure1_example(spec),
        DynamicTopology::Grid { switches } => {
            let (topology, fabric) = builders::switch_grid(2, switches.div_ceil(2).max(1), spec);
            let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0xA11C_E5ED);
            builders::attach_end_stations(topology, &fabric, scenario.slots, spec, &mut rng)
        }
        DynamicTopology::Ring { switches } => {
            let (topology, fabric) = builders::switch_ring(switches.max(3), spec);
            let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0xA11C_E5ED);
            builders::attach_end_stations(topology, &fabric, scenario.slots, spec, &mut rng)
        }
    }
}

/// Generates the seeded event trace of a scenario over its network.
///
/// The mix contains admissions onto free slots, *doomed* admissions onto
/// already-occupied sensors (exercising the rejection path), removals of
/// previously admitted loops, and failures/recoveries of switch-to-switch
/// links (at most one physical link down at a time, so the fabric stays
/// connected on every topology this module builds).
pub fn event_trace(scenario: &DynamicScenario) -> (BuiltNetwork, Vec<NetworkEvent>) {
    let network = dynamic_network(scenario);
    let mut rng = StdRng::seed_from_u64(scenario.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let slots = network.application_slots();
    let target = ((slots as f64) * scenario.load.clamp(0.0, 1.0)).round() as usize;

    // One direction per switch-to-switch physical link is eligible to fail.
    let downable: Vec<LinkId> = network
        .topology
        .links()
        .filter(|l| {
            network.topology.node(l.source()).kind() == NodeKind::Switch
                && network.topology.node(l.target()).kind() == NodeKind::Switch
                && l.id().index() < l.reverse().index()
        })
        .map(|l| l.id())
        .collect();

    let mut events = Vec::with_capacity(scenario.events);
    let mut next_id = 0u64;
    // (predicted id, slot) of loops the generator believes are live.
    let mut occupied: Vec<(AppId, usize)> = Vec::new();
    let mut free: Vec<usize> = (0..slots).collect();
    let mut down: Option<LinkId> = None;

    let admit = |rng: &mut StdRng, slot: usize, next_id: &mut u64| -> NetworkEvent {
        let period = Time::from_millis(PERIODS_MS[rng.gen_range(0..PERIODS_MS.len())]);
        let app = ControlApplication {
            name: format!("dyn-{}", *next_id),
            sensor: network.sensors[slot],
            controller: network.controllers[slot],
            period,
            frame_bytes: 1500,
            stability: synthetic_bound(period, rng),
        };
        *next_id += 1;
        NetworkEvent::AdmitApp { app }
    };

    for _ in 0..scenario.events {
        let roll = rng.gen_range(0..100u32);
        let want_admit = occupied.len() < target || free.is_empty();
        let event = if roll < 15 && !occupied.is_empty() {
            // Doomed admission: the sensor is already in use.
            let &(_, slot) = &occupied[rng.gen_range(0..occupied.len())];
            // Rejection predicted, so no slot bookkeeping changes.
            admit(&mut rng, slot, &mut next_id)
        } else if roll < 25 && down.is_none() && !downable.is_empty() {
            let link = downable[rng.gen_range(0..downable.len())];
            down = Some(link);
            NetworkEvent::LinkDown { link }
        } else if roll < 35 && down.is_some() {
            let link = down.take().expect("checked");
            NetworkEvent::LinkUp { link }
        } else if (roll < 55 || !want_admit) && !occupied.is_empty() {
            let idx = rng.gen_range(0..occupied.len());
            let (id, slot) = occupied.remove(idx);
            free.push(slot);
            NetworkEvent::RemoveApp { app: id }
        } else if !free.is_empty() {
            let idx = rng.gen_range(0..free.len());
            let slot = free.remove(idx);
            let id = AppId(next_id);
            let e = admit(&mut rng, slot, &mut next_id);
            occupied.push((id, slot));
            e
        } else {
            // Every slot busy and nothing else applicable: remove someone.
            let (id, slot) = occupied.remove(rng.gen_range(0..occupied.len()));
            free.push(slot);
            NetworkEvent::RemoveApp { app: id }
        };
        events.push(event);
    }
    (network, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let scenario = DynamicScenario::default();
        let (_, a) = event_trace(&scenario);
        let (_, b) = event_trace(&scenario);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let (_, c) = event_trace(&DynamicScenario {
            seed: 1,
            ..scenario
        });
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn traces_mix_event_kinds() {
        let scenario = DynamicScenario {
            events: 120,
            ..DynamicScenario::default()
        };
        let (network, events) = event_trace(&scenario);
        assert_eq!(events.len(), 120);
        let mut admits = 0;
        let mut removes = 0;
        let mut downs = 0;
        let mut ups = 0;
        for e in &events {
            match e {
                NetworkEvent::AdmitApp { app } => {
                    admits += 1;
                    assert!(network.sensors.contains(&app.sensor));
                    assert_eq!(app.period.as_millis() % 10, 0);
                }
                NetworkEvent::RemoveApp { .. } => removes += 1,
                NetworkEvent::LinkDown { link } => {
                    downs += 1;
                    let l = network.topology.link(*link);
                    assert_eq!(network.topology.node(l.source()).kind(), NodeKind::Switch);
                    assert_eq!(network.topology.node(l.target()).kind(), NodeKind::Switch);
                }
                NetworkEvent::LinkUp { .. } => ups += 1,
            }
        }
        assert!(admits > 10, "admits: {admits}");
        assert!(removes > 5, "removes: {removes}");
        assert!(downs >= 1, "downs: {downs}");
        assert!(
            ups <= downs,
            "a link can only come back up after going down"
        );
    }

    #[test]
    fn grid_and_ring_networks_have_requested_slots() {
        for topology in [
            DynamicTopology::Grid { switches: 6 },
            DynamicTopology::Ring { switches: 5 },
        ] {
            let scenario = DynamicScenario {
                topology,
                slots: 5,
                ..DynamicScenario::default()
            };
            let network = dynamic_network(&scenario);
            assert_eq!(network.application_slots(), 5);
            builders::validate_routability(&network).unwrap();
        }
    }
}
