//! The reconstructed automotive case study of the paper's Table I.
//!
//! The original example comes from General Motors: 20 sensors (camera,
//! radar, lidar) and electronic control units communicating over 8 Ethernet
//! switches at 10 Mbit/s with 1500-byte frames (`ld = 1.2 ms`,
//! `sd = 5 µs`), for a total of 106 messages in the 200 ms hyper-period.
//! The paper publishes the parameters (period, alpha, beta) of five of the
//! twenty applications; the remaining fifteen are reconstructed here with
//! periods chosen so the message count is exactly 106 and with stability
//! parameters drawn from the same ranges.

use serde::{Deserialize, Serialize};
use tsn_control::PiecewiseLinearBound;
use tsn_net::{builders, LinkSpec, Time};
use tsn_synthesis::{SynthesisError, SynthesisProblem};

/// The five applications published in Table I: (period ms, alpha, beta ms).
pub const TABLE1_APPS: [(i64, f64, f64); 5] = [
    (20, 1.53, 27.78),
    (40, 2.27, 15.70),
    (50, 1.07, 80.71),
    (40, 2.27, 15.70),
    (50, 1.07, 80.71),
];

/// The reconstructed fifteen remaining applications: (period ms, alpha,
/// beta ms). Periods are chosen so the total message count over the 200 ms
/// hyper-period is exactly 106 (28 messages come from the published five).
const RECONSTRUCTED_APPS: [(i64, f64, f64); 15] = [
    (20, 1.53, 27.78),
    (20, 1.60, 24.00),
    (20, 1.45, 30.00),
    (20, 1.53, 27.78),
    (40, 2.27, 15.70),
    (40, 2.00, 22.00),
    (40, 2.27, 15.70),
    (40, 1.80, 26.00),
    (50, 1.07, 80.71),
    (50, 1.20, 60.00),
    (50, 1.07, 80.71),
    (100, 1.20, 70.00),
    (100, 1.10, 90.00),
    (200, 1.10, 120.00),
    (200, 1.05, 150.00),
];

/// A fully specified automotive case study: the problem plus the indexes of
/// the five applications whose parameters the paper publishes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutomotiveCaseStudy {
    /// The synthesis problem (topology + 20 applications).
    pub problem: SynthesisProblem,
    /// Indexes of the five applications reported in Table I, in table order.
    pub table1_apps: Vec<usize>,
}

/// Builds the automotive case study.
///
/// # Errors
///
/// Propagates problem-construction errors (which would indicate a bug in the
/// reconstruction).
pub fn automotive_case_study() -> Result<AutomotiveCaseStudy, SynthesisError> {
    let spec = LinkSpec::automotive_10mbps();
    let network = builders::automotive_backbone(20, 20, spec);
    let mut problem = SynthesisProblem::new(network.topology, Time::from_micros(5));
    let mut table1_apps = Vec::with_capacity(TABLE1_APPS.len());
    let sensor_names = ["camera", "radar", "lidar", "camera", "radar"];
    for (i, &(period_ms, alpha, beta_ms)) in TABLE1_APPS.iter().enumerate() {
        let idx = problem.add_application(
            format!("table1-{}-{}", i + 1, sensor_names[i]),
            network.sensors[i],
            network.controllers[i],
            Time::from_millis(period_ms),
            1500,
            PiecewiseLinearBound::single_segment(alpha, beta_ms / 1000.0),
        )?;
        table1_apps.push(idx);
    }
    for (i, &(period_ms, alpha, beta_ms)) in RECONSTRUCTED_APPS.iter().enumerate() {
        let slot = TABLE1_APPS.len() + i;
        problem.add_application(
            format!("ecu-{}", slot + 1),
            network.sensors[slot],
            network.controllers[slot],
            Time::from_millis(period_ms),
            1500,
            PiecewiseLinearBound::single_segment(alpha, beta_ms / 1000.0),
        )?;
    }
    Ok(AutomotiveCaseStudy {
        problem,
        table1_apps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_matches_paper_dimensions() {
        let study = automotive_case_study().unwrap();
        let p = &study.problem;
        assert_eq!(p.applications().len(), 20);
        assert_eq!(p.topology().switches().len(), 8);
        assert_eq!(p.hyperperiod(), Time::from_millis(200));
        assert_eq!(
            p.message_count(),
            106,
            "the paper schedules 106 messages in the 200 ms hyper-period"
        );
        assert_eq!(study.table1_apps.len(), 5);
        // Transmission delay on every link is the paper's 1.2 ms.
        let link = p.topology().links().next().unwrap();
        assert_eq!(link.transmission_delay(1500), Time::from_micros(1200));
        p.validate().unwrap();
    }

    #[test]
    fn table1_parameters_are_faithful() {
        let study = automotive_case_study().unwrap();
        for (pos, &idx) in study.table1_apps.iter().enumerate() {
            let app = &study.problem.applications()[idx];
            let (period_ms, alpha, beta_ms) = TABLE1_APPS[pos];
            assert_eq!(app.period, Time::from_millis(period_ms));
            let segment = app.stability.segments()[0];
            assert!((segment.alpha - alpha).abs() < 1e-12);
            assert!((segment.beta - beta_ms / 1000.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deadline_style_outcomes_of_table1_are_reproduced() {
        // The paper's Table I deadline column: three of the five published
        // applications end up unstable. Check that the published latencies
        // and jitters indeed violate / satisfy the published bounds.
        let study = automotive_case_study().unwrap();
        let deadline_results_ms = [
            (4.81, 15.10),  // app 1 -> unstable in the paper (highlighted)
            (16.02, 22.12), // app 2 -> unstable
            (17.22, 30.13), // app 3 -> stable
            (30.83, 7.70),  // app 4 -> unstable
            (13.57, 36.34), // app 5 -> stable
        ];
        let expected_stable = [false, false, true, false, true];
        for ((&idx, &(lat, jit)), &stable) in study
            .table1_apps
            .iter()
            .zip(deadline_results_ms.iter())
            .zip(expected_stable.iter())
        {
            let app = &study.problem.applications()[idx];
            let is_stable = app.is_stable(
                Time::from_secs_f64(lat / 1000.0),
                Time::from_secs_f64(jit / 1000.0),
            );
            assert_eq!(
                is_stable, stable,
                "application {} stability classification mismatch",
                app.name
            );
        }
    }
}
