//! # tsn-stability
//!
//! Umbrella crate for the reproduction of *"Stability-Aware Integrated
//! Routing and Scheduling for Control Applications in Ethernet Networks"*
//! (Mahfouzi et al., DATE 2018).
//!
//! The workspace is organised as a set of substrates plus the paper's core
//! contribution; this crate re-exports them under stable module names so that
//! examples and downstream users only need a single dependency:
//!
//! * [`net`] — network topology, builders and path enumeration
//!   ([`tsn_net`]).
//! * [`control`] — plant models, LQR design and jitter-margin stability
//!   analysis ([`tsn_control`]).
//! * [`smt`] — the DPLL(T) difference-logic solver ([`tsn_smt`]).
//! * [`synthesis`] — the stability-aware joint routing and scheduling
//!   synthesizer ([`tsn_synthesis`]).
//! * [`sim`] — the 802.1Qbv discrete-event simulator and control
//!   co-simulation ([`tsn_sim`]).
//! * [`workload`] — scenario generators and the automotive case study
//!   ([`tsn_workload`]).
//! * [`online`] — online admission control and warm-started
//!   reconfiguration ([`tsn_online`]).
//! * [`scale`] — partitioned, parallel synthesis for large instances
//!   ([`tsn_scale`]).
//! * [`service`] — the multi-tenant synthesis daemon serving the wire
//!   protocol over TCP ([`tsn_service`]).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: build a topology,
//! describe control applications, synthesize stable routes and schedules, and
//! validate them in the simulator.

#![warn(missing_docs)]

/// Network topology, builders and path enumeration.
pub use tsn_net as net;

/// Control-theory substrate: plants, controllers and stability analysis.
pub use tsn_control as control;

/// DPLL(T) SMT solver with an integer difference-logic theory.
pub use tsn_smt as smt;

/// Stability-aware joint routing and scheduling synthesis (the paper's core).
pub use tsn_synthesis as synthesis;

/// Discrete-event TSN simulator and control co-simulation.
pub use tsn_sim as sim;

/// Workload generators and the automotive case study.
pub use tsn_workload as workload;

/// Online admission control and warm-started reconfiguration.
pub use tsn_online as online;

/// Partitioned, parallel large-scale synthesis (thousands of streams).
pub use tsn_scale as scale;

/// The multi-tenant synthesis daemon and its wire protocol.
pub use tsn_service as service;
